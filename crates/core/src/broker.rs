//! The WS-Messenger broker itself.

use crate::backend::{InMemoryBackend, MessagingBackend};
use crate::delivery::{self, DeliveryEngine, DispatchMode, FailKind, PushJob, StatsDelta};
use crate::detect::SpecDialect;
use crate::event::InternalEvent;
use crate::obs::{BrokerObs, Stage};
use crate::registry::{BrokerDeliveryMode, BrokerSubscription, Registry, UnifiedFilters};
use crate::reliability::{
    Admitted, BreakerState, DeadLetter, FaultTolerance, PumpReport, ReliabilityState,
};
use crate::render::{render_batch, render_notification_cached, RenderCache};
use crate::stage::EventSource;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use wsm_addressing::EndpointReference;
use wsm_eventing::{EndStatus, Expires, WseCodec, WseVersion};
use wsm_notification::{Termination, WsnCodec, WsnFilter, WsnVersion};
use wsm_soap::{Envelope, Fault};
use wsm_topics::{TopicExpression, TopicSpace};
use wsm_transport::{AttemptClass, Network, SoapHandler};
use wsm_xml::{Element, SharedElement};

/// Counters describing the broker's mediation activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediationStats {
    /// Publications ingested.
    pub published: u64,
    /// Notifications delivered to WS-Eventing consumers.
    pub delivered_wse: u64,
    /// Notifications delivered to WS-Notification consumers.
    pub delivered_wsn: u64,
    /// Deliveries whose inbound dialect family differed from the
    /// consumer's — the mediated traffic.
    pub mediated: u64,
    /// Deliveries that failed for good: in legacy mode the
    /// subscription was dropped, in fault-tolerant mode the message
    /// was dead-lettered.
    pub failed: u64,
    /// Retries performed by the delivery engine and the redelivery
    /// pump.
    pub retried: u64,
    /// Successful deliveries that came off the redelivery queue.
    pub redelivered: u64,
    /// Messages moved to the dead-letter store.
    pub dead_lettered: u64,
}

/// The broker's live mediation counters: one relaxed atomic per field,
/// so `stats()` snapshots without ever blocking a publishing thread
/// (the seed kept these behind a `Mutex<MediationStats>`, which a
/// snapshot reader could contend with mid-publication).
#[derive(Debug, Default)]
struct StatsCells {
    published: AtomicU64,
    delivered_wse: AtomicU64,
    delivered_wsn: AtomicU64,
    mediated: AtomicU64,
    failed: AtomicU64,
    retried: AtomicU64,
    redelivered: AtomicU64,
    dead_lettered: AtomicU64,
}

impl StatsCells {
    fn inc_published(&self) {
        self.published.fetch_add(1, Ordering::Relaxed);
    }

    /// Merge one publication's accumulated delivery outcomes: a single
    /// pass of relaxed adds, once per publish.
    fn merge(&self, delta: &StatsDelta) {
        self.delivered_wse
            .fetch_add(delta.delivered_wse, Ordering::Relaxed);
        self.delivered_wsn
            .fetch_add(delta.delivered_wsn, Ordering::Relaxed);
        self.mediated.fetch_add(delta.mediated, Ordering::Relaxed);
        self.failed.fetch_add(delta.failed, Ordering::Relaxed);
        self.retried.fetch_add(delta.retried, Ordering::Relaxed);
        self.redelivered
            .fetch_add(delta.redelivered, Ordering::Relaxed);
        self.dead_lettered
            .fetch_add(delta.dead_lettered, Ordering::Relaxed);
    }

    fn snapshot(&self) -> MediationStats {
        MediationStats {
            published: self.published.load(Ordering::Relaxed),
            delivered_wse: self.delivered_wse.load(Ordering::Relaxed),
            delivered_wsn: self.delivered_wsn.load(Ordering::Relaxed),
            mediated: self.mediated.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            redelivered: self.redelivered.load(Ordering::Relaxed),
            dead_lettered: self.dead_lettered.load(Ordering::Relaxed),
        }
    }
}

struct MessengerInner {
    net: Network,
    uri: String,
    manager_uri: String,
    registry: Registry,
    backend: Arc<dyn MessagingBackend>,
    topic_space: Mutex<TopicSpace>,
    current: Mutex<HashMap<String, Arc<SharedElement>>>,
    properties: Mutex<Element>,
    stats: StatsCells,
    obs: BrokerObs,
    publisher_registrations: AtomicU64,
    /// Delivery attempts per notification before the subscription is
    /// dropped (the broker's "reliable" knob; 1 = no retry).
    delivery_attempts: AtomicU32,
    /// Worker threads for push fan-out; 0 or 1 delivers sequentially.
    fanout_workers: AtomicUsize,
    /// Persistent push worker pool (threads spawn lazily on the first
    /// large-enough fan-out).
    engine: DeliveryEngine,
    /// Fault-tolerant delivery state (redelivery queue, breakers,
    /// dead-letter store); `None` keeps the seed's drop-on-failure
    /// semantics.
    reliability: RwLock<Option<Arc<ReliabilityState>>>,
}

/// The dual-specification mediation broker (paper §VII).
#[derive(Clone)]
pub struct WsMessenger {
    inner: Arc<MessengerInner>,
}

impl WsMessenger {
    /// Start a broker with the default in-memory backend.
    pub fn start(net: &Network, uri: &str) -> Self {
        Self::start_with_backend(net, uri, Arc::new(InMemoryBackend::new()))
    }

    /// Start a broker over an explicit pub/sub backend (e.g.
    /// [`crate::backend::JmsBackend`] wrapping a JMS provider).
    pub fn start_with_backend(
        net: &Network,
        uri: &str,
        backend: Arc<dyn MessagingBackend>,
    ) -> Self {
        let inner = Arc::new(MessengerInner {
            net: net.clone(),
            uri: uri.to_string(),
            manager_uri: format!("{uri}/subscriptions"),
            registry: Registry::new(),
            backend,
            topic_space: Mutex::new(TopicSpace::new()),
            current: Mutex::new(HashMap::new()),
            properties: Mutex::new(Element::local("ProducerProperties")),
            stats: StatsCells::default(),
            obs: BrokerObs::new(),
            publisher_registrations: AtomicU64::new(0),
            delivery_attempts: AtomicU32::new(1),
            fanout_workers: AtomicUsize::new(delivery::default_workers()),
            engine: DeliveryEngine::new(),
            reliability: RwLock::new(None),
        });
        net.register(
            uri,
            Arc::new(MessengerHandler {
                inner: Arc::clone(&inner),
            }),
        );
        net.register(
            inner.manager_uri.clone(),
            Arc::new(ManagerHandler {
                inner: Arc::clone(&inner),
            }),
        );
        WsMessenger { inner }
    }

    /// The broker endpoint URI.
    pub fn uri(&self) -> &str {
        &self.inner.uri
    }

    /// The subscription-manager endpoint URI.
    pub fn manager_uri(&self) -> &str {
        &self.inner.manager_uri
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.inner.registry.len()
    }

    /// Number of registered publishers.
    pub fn publisher_registration_count(&self) -> u64 {
        self.inner.publisher_registrations.load(Ordering::Relaxed)
    }

    /// Mediation statistics so far (a lock-free snapshot of relaxed
    /// per-field atomics; never blocks a publishing thread).
    pub fn stats(&self) -> MediationStats {
        self.inner.stats.snapshot()
    }

    /// Runtime observability kill-switch: `false` stops metric and
    /// span recording without recompiling. A no-op when the `obs`
    /// feature is compiled out.
    pub fn set_obs_enabled(&self, on: bool) {
        self.inner.obs.set_enabled(on);
    }

    /// Set how many delivery attempts each notification gets before the
    /// broker gives up on the subscription (minimum 1). The retry is
    /// immediate — the simulated network has no transient backoff — but
    /// it absorbs injected loss, which is how the tests model flaky
    /// consumers.
    pub fn set_delivery_attempts(&self, attempts: u32) {
        self.inner
            .delivery_attempts
            .store(attempts.max(1), Ordering::Relaxed);
    }

    /// Set the push fan-out worker count. `0` or `1` delivers
    /// sequentially on the publishing thread; the default is one worker
    /// per available core. Small fan-outs are delivered inline either
    /// way — the pool only spins up when a publication has enough push
    /// jobs to amortize it.
    pub fn set_fanout_workers(&self, workers: usize) {
        self.inner.fanout_workers.store(workers, Ordering::Relaxed);
    }

    /// Pin the delivery engine's dispatch policy for parallel
    /// fan-outs: [`DispatchMode::Adaptive`] (the default) measures
    /// streaming-inline vs sharded-pool cost per fan-out size and
    /// picks the cheaper; `Inline` and `Sharded` force one path —
    /// benches use this to compare the regimes, and deterministic
    /// scenarios can pin the path they were seeded against.
    pub fn set_dispatch_mode(&self, mode: DispatchMode) {
        self.inner.engine.set_mode(mode);
    }

    /// Switch fault-tolerant delivery on (`Some(config)`) or back to
    /// the seed's drop-on-failure semantics (`None`).
    ///
    /// With fault tolerance on, a failed push never evicts the
    /// subscription. The message re-enqueues with exponential backoff
    /// and deterministic seeded jitter (transient failures) until
    /// [`FaultTolerance::max_redeliveries`], a circuit breaker per
    /// subscriber sheds load from endpoints that keep failing, and
    /// messages that exhaust their budget — or provoke
    /// [`FaultTolerance::poison_budget`] SOAP-fault responses — land
    /// in the dead-letter store ([`WsMessenger::dead_letters`],
    /// queryable over SOAP via `wsm:GetDeadLetters`).
    pub fn set_fault_tolerance(&self, config: Option<FaultTolerance>) {
        *self.inner.reliability.write() = config.map(|c| Arc::new(ReliabilityState::new(c)));
    }

    /// Whether fault-tolerant delivery is active.
    pub fn fault_tolerance_enabled(&self) -> bool {
        self.inner.reliability.read().is_some()
    }

    /// Attempt every due redelivery at the current virtual time.
    /// Returns what the pass did. A no-op (empty report) when fault
    /// tolerance is off or nothing is due.
    pub fn pump_redeliveries(&self) -> PumpReport {
        pump_reliability(&self.inner)
    }

    /// Drain the redelivery queue by advancing the virtual clock to
    /// each due time within `horizon_ms` of now and pumping, until the
    /// queue is empty, every breaker holds, or the horizon passes.
    /// Returns the accumulated outcomes.
    pub fn drain_redeliveries(&self, horizon_ms: u64) -> PumpReport {
        let mut total = PumpReport::default();
        let Some(rel) = self.inner.reliability.read().clone() else {
            return total;
        };
        let deadline = self.inner.net.clock().now_ms().saturating_add(horizon_ms);
        while let Some(due) = rel.next_due_ms() {
            if due > deadline {
                break;
            }
            self.inner.net.clock().set_ms(due);
            total.absorb(pump_reliability(&self.inner));
        }
        total
    }

    /// Messages waiting in the redelivery queue.
    pub fn redelivery_depth(&self) -> usize {
        self.inner
            .reliability
            .read()
            .as_ref()
            .map_or(0, |r| r.depth())
    }

    /// Snapshot of the dead-letter store.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.inner
            .reliability
            .read()
            .as_ref()
            .map_or_else(Vec::new, |r| r.dead_letters())
    }

    /// Dead letters currently stored.
    pub fn dead_letter_count(&self) -> usize {
        self.inner
            .reliability
            .read()
            .as_ref()
            .map_or(0, |r| r.dead_count())
    }

    /// Move every dead letter back into its subscriber's redelivery
    /// channel with a fresh budget. Returns how many were requeued;
    /// drive them with [`WsMessenger::drain_redeliveries`].
    pub fn redeliver_dead_letters(&self) -> usize {
        let Some(rel) = self.inner.reliability.read().clone() else {
            return 0;
        };
        rel.redeliver_dead(self.inner.net.clock().now_ms())
    }

    /// The circuit-breaker state guarding one subscription, if fault
    /// tolerance is on and the subscriber has a redelivery channel.
    pub fn breaker_state(&self, sub_id: &str) -> Option<BreakerState> {
        let rel = self.inner.reliability.read().clone()?;
        rel.breaker_state(sub_id, self.inner.net.clock().now_ms())
    }

    /// The backend name.
    pub fn backend_name(&self) -> &'static str {
        self.inner.backend.name()
    }

    /// Prometheus-style text exposition of the broker metrics
    /// (refreshes the live-subscription gauge at scrape time).
    #[cfg(feature = "obs")]
    pub fn metrics_text(&self) -> String {
        self.inner
            .obs
            .set_subscriptions(self.inner.registry.len() as i64);
        if let Some(rel) = self.inner.reliability.read().clone() {
            refresh_reliability_gauges(&self.inner, &rel);
        }
        let mut text = self.inner.obs.prometheus();
        text.push_str(
            &self
                .inner
                .obs
                .slo_prometheus(self.inner.net.clock().now_ms()),
        );
        text
    }

    /// Snapshot of the buffered pipeline-stage spans, oldest first.
    #[cfg(feature = "obs")]
    pub fn trace_spans(&self) -> Vec<crate::obs::SpanRecord> {
        self.inner.obs.spans()
    }

    /// Take the buffered pipeline-stage spans, leaving the ring empty.
    #[cfg(feature = "obs")]
    pub fn drain_trace_spans(&self) -> Vec<crate::obs::SpanRecord> {
        self.inner.obs.drain_spans()
    }

    /// Aggregate per-stage and per-delivery latency statistics.
    #[cfg(feature = "obs")]
    pub fn obs_snapshot(&self) -> crate::obs::ObsSnapshot {
        self.inner.obs.snapshot()
    }

    /// Install declarative latency objectives on the broker's SLO
    /// engine (replacing any previous set). Objectives are judged
    /// against *terminal* end-to-end outcomes — publish to final
    /// delivery, dead-lettering, or expiry — on the virtual clock.
    #[cfg(feature = "obs")]
    pub fn set_slos(&self, specs: Vec<crate::obs::SloSpec>) {
        self.inner.obs.set_slos(specs);
    }

    /// Evaluate every installed objective as of the current virtual
    /// time: measured quantile, error-budget burn rate, pass/fail.
    #[cfg(feature = "obs")]
    pub fn slo_reports(&self) -> Vec<crate::obs::SloReport> {
        self.inner.obs.slo_reports(self.inner.net.clock().now_ms())
    }

    /// Reconstruct complete per-(event, subscriber) delivery stories
    /// from the buffered spans: every attempt in causal order plus the
    /// terminal outcome, if one was reached.
    #[cfg(feature = "obs")]
    pub fn delivery_stories(&self) -> Vec<crate::obs::DeliveryStory> {
        crate::obs::reconstruct(&self.inner.obs.spans())
    }

    /// The buffered spans plus a trailing span-loss gauge, as JSONL.
    #[cfg(feature = "obs")]
    pub fn spans_jsonl(&self) -> String {
        self.inner.obs.spans_jsonl()
    }

    /// Declare a topic.
    pub fn add_topic(&self, path: &str) {
        self.inner.topic_space.lock().add_str(path);
    }

    /// Set a broker/producer property (ProducerProperties filters).
    pub fn set_property(&self, name: &str, value: &str) {
        let mut props = self.inner.properties.lock();
        props
            .children
            .retain(|c| c.as_element().map(|e| e.name.local != name).unwrap_or(true));
        props.push(Element::local(name).with_text(value));
    }

    /// Publish an event on a topic (in-process publisher API).
    pub fn publish_on(&self, topic: &str, payload: &Element) -> usize {
        self.publish_event(InternalEvent::on_topic(topic, payload.clone()))
    }

    /// Publish a topicless event (the WS-Eventing shape).
    pub fn publish_raw(&self, payload: &Element) -> usize {
        self.publish_event(InternalEvent::raw(payload.clone()))
    }

    /// Publish a fully-specified internal event.
    pub fn publish_event(&self, event: InternalEvent) -> usize {
        ingest(&self.inner, event)
    }

    /// Flush wrapped-mode buffers; returns batches sent.
    pub fn flush_wrapped(&self) -> usize {
        let inner = &self.inner;
        let mut batches = 0;
        for (id, events) in inner.registry.take_wrap_buffers() {
            if let Some(sub) = inner.registry.get(&id) {
                let epr = subscription_epr(inner, &sub.id, sub.spec);
                let payloads: Vec<_> = events.iter().map(|e| e.payload.clone()).collect();
                let env = render_batch(&sub, &payloads, &inner.uri, &epr);
                if inner.net.send(&sub.consumer.address, env).is_ok() {
                    batches += 1;
                    #[cfg(feature = "obs")]
                    {
                        let now = inner.net.clock().now_ms();
                        for ev in &events {
                            inner.obs.resolve(
                                ev.seq,
                                &sub.id,
                                0,
                                ev.queued_at_ms,
                                now,
                                crate::obs::Outcome::Delivered,
                            );
                        }
                    }
                } else {
                    drop_failed(inner, &sub.id);
                }
            }
        }
        batches
    }
}

// ---------------------------------------------------------- ingestion

fn ingest(inner: &MessengerInner, event: InternalEvent) -> usize {
    let seq = inner.obs.next_seq();
    ingest_seq(inner, event, seq)
}

/// Ingest one publication under an already-minted trace sequence
/// number (the SOAP handler mints the seq when it times dialect
/// detection, so all of a request's stage spans share one trace id).
fn ingest_seq(inner: &MessengerInner, event: InternalEvent, seq: u64) -> usize {
    let timer = inner.obs.start();
    if let Some(t) = &event.topic {
        inner.topic_space.lock().add(t);
        inner
            .current
            .lock()
            .insert(t.to_string(), event.payload.clone());
    }
    inner.stats.inc_published();
    inner.obs.record_publication();
    inner.backend.publish(event);
    inner
        .obs
        .stage(Stage::Publish, seq, timer, inner.net.clock().now_ms(), 1);
    let mut delivered = 0;
    for ev in inner.backend.drain() {
        delivered += fan_out(inner, &ev, seq);
    }
    // Piggyback a redelivery pass on every publication: queued
    // messages whose backoff elapsed (the sends above advanced the
    // virtual clock) go out now. A cheap no-op when nothing is due.
    if inner.reliability.read().is_some() {
        pump_reliability(inner);
    }
    delivered
}

/// The broker's streaming [`EventSource`]: renders each matched push
/// subscriber's envelope lazily as the delivery engine pulls it, so
/// rendering overlaps with delivery (the engine is already sending
/// sealed shards while later envelopes render). Per-subscriber
/// reliability gating (FIFO behind pending redeliveries) happens here
/// too: a gated job is enqueued to the redelivery channel and the
/// source moves on to the next subscriber.
struct RenderSource<'a> {
    inner: &'a MessengerInner,
    cache: &'a RenderCache,
    event: &'a InternalEvent,
    rel: Option<Arc<ReliabilityState>>,
    subs: std::vec::IntoIter<Arc<BrokerSubscription>>,
    expected: usize,
    seq: u64,
    now: u64,
    /// Jobs actually yielded (excludes reliability-gated ones).
    rendered: u64,
    /// Accumulated render time, recorded as the `render` stage span
    /// once the fan-out completes.
    #[cfg(feature = "obs")]
    render_ns: u64,
}

impl EventSource for RenderSource<'_> {
    fn next_event(&mut self) -> Option<PushJob> {
        loop {
            let sub = self.subs.next()?;
            #[cfg(feature = "obs")]
            let render_started = std::time::Instant::now();
            let envelope = render_notification_cached(
                self.cache,
                &sub,
                self.event,
                &self.inner.uri,
                &self.inner.manager_uri,
            );
            #[cfg(feature = "obs")]
            {
                self.render_ns += render_started.elapsed().as_nanos() as u64;
            }
            let job = PushJob {
                sub_id: sub.id.clone(),
                address: sub.consumer.address.clone(),
                envelope,
                wse: matches!(sub.spec, SpecDialect::Wse(_)),
                mediated: self
                    .event
                    .origin
                    .is_some_and(|o| family(o) != family(sub.spec)),
                seq: self.seq,
                published_at_ms: self.now,
                attempt: 0,
            };
            // FIFO per subscriber: while redeliveries are pending
            // (or the breaker is open) a fresh message queues
            // behind them instead of overtaking on the wire.
            if let Some(rel) = self
                .rel
                .as_ref()
                .filter(|r| r.must_enqueue(&job.sub_id, self.now))
            {
                rel.enqueue_new(job, self.now);
                continue;
            }
            self.rendered += 1;
            return Some(job);
        }
    }

    fn expected(&self) -> usize {
        self.expected
    }
}

fn fan_out(inner: &MessengerInner, event: &InternalEvent, seq: u64) -> usize {
    let now = inner.net.clock().now_ms();
    let match_timer = inner.obs.start();
    inner.registry.sweep_expired(now);
    let props = inner.properties.lock().clone();
    let subs = inner.registry.matching(event, Some(&props), now);
    inner
        .obs
        .stage(Stage::Match, seq, match_timer, now, subs.len() as u64);
    let rel = inner.reliability.read().clone();
    let mut delivered = 0;
    // Pre-pass: queue-backed modes (pull, wrapped) resolve inline;
    // push subscribers feed the streaming render source below.
    let mut push_subs: Vec<Arc<BrokerSubscription>> = Vec::with_capacity(subs.len());
    for sub in subs {
        match sub.mode {
            BrokerDeliveryMode::Push => push_subs.push(sub),
            BrokerDeliveryMode::Pull => {
                if inner
                    .registry
                    .queue_event(&sub.id, event.payload.clone(), seq, now)
                {
                    delivered += 1;
                }
            }
            BrokerDeliveryMode::Wrapped => {
                if inner
                    .registry
                    .buffer_wrapped(&sub.id, event.payload.clone(), seq, now)
                {
                    delivered += 1;
                }
            }
        }
    }
    let cache = RenderCache::new(event);
    let expected = push_subs.len();
    let workers = inner.fanout_workers.load(Ordering::Relaxed);
    let mut source = RenderSource {
        inner,
        cache: &cache,
        event,
        rel: rel.clone(),
        subs: push_subs.into_iter(),
        expected,
        seq,
        now,
        rendered: 0,
        #[cfg(feature = "obs")]
        render_ns: 0,
    };
    let deliver_timer = inner.obs.start();
    let report = inner.engine.execute_source(
        &inner.net,
        inner.delivery_attempts.load(Ordering::Relaxed),
        workers,
        &mut source,
    );
    let after_ms = inner.net.clock().now_ms();
    // Render happened inside the deliver window (the source renders
    // lazily while the engine sends); record its accumulated time
    // first so ring order stays publish → match → render → deliver,
    // then the deliver span — whose duration now *includes* the
    // overlapped rendering — and the publisher's handoff wait.
    #[cfg(feature = "obs")]
    inner
        .obs
        .stage_dur(Stage::Render, seq, source.render_ns, now, source.rendered);
    inner.obs.stage(
        Stage::Deliver,
        seq,
        deliver_timer,
        after_ms,
        report.delivered as u64,
    );
    if report.mode == "sharded" {
        inner.obs.stage_dur(
            Stage::Handoff,
            seq,
            report.join_wait_ns,
            after_ms,
            workers as u64,
        );
    }
    #[cfg(feature = "obs")]
    inner.obs.record_latencies(&report.latencies_ns);
    delivered += report.delivered;
    // Every first-round success is a terminal outcome: resolve its
    // causal timeline (and feed the e2e histogram + SLO engine) now.
    #[cfg(feature = "obs")]
    {
        let resolved_at = inner.net.clock().now_ms();
        for job in &report.resolved {
            inner.obs.resolve(
                job.seq,
                &job.sub_id,
                job.attempt,
                job.published_at_ms,
                resolved_at,
                crate::obs::Outcome::Delivered,
            );
        }
    }
    let mut delta = report.delta;
    match rel {
        Some(rel) => {
            // Fault-tolerant mode: a failed push is not "failed" yet —
            // it re-enqueues with backoff, and only dead-lettering
            // counts against the broker.
            delta.failed = 0;
            let now = inner.net.clock().now_ms();
            for (kind, job) in report.failures {
                #[cfg(feature = "obs")]
                let (jseq, jsub, jattempt, jpub) = (
                    job.seq,
                    job.sub_id.clone(),
                    job.attempt,
                    job.published_at_ms,
                );
                match rel.admit_failure(kind, job, now) {
                    Admitted::Requeued { backoff_ms, .. } => {
                        inner.obs.record_backoff(backoff_ms);
                        #[cfg(feature = "obs")]
                        inner.obs.retry(jseq, &jsub, jattempt, now, 0);
                    }
                    Admitted::DeadLettered => {
                        delta.failed += 1;
                        delta.dead_lettered += 1;
                        inner.obs.record_dead_letter();
                        #[cfg(feature = "obs")]
                        {
                            inner
                                .obs
                                .dead_letter(jseq, &jsub, jattempt.saturating_add(1), now);
                            inner.obs.resolve(
                                jseq,
                                &jsub,
                                jattempt,
                                jpub,
                                now,
                                crate::obs::Outcome::DeadLettered,
                            );
                        }
                    }
                }
            }
            refresh_reliability_gauges(inner, &rel);
        }
        None => {
            #[cfg(feature = "obs")]
            let now = inner.net.clock().now_ms();
            for (_, job) in &report.failures {
                drop_failed(inner, &job.sub_id);
                // Legacy mode evicts the subscription: the message's
                // story ends here, unresolved-by-delivery.
                #[cfg(feature = "obs")]
                inner.obs.resolve(
                    job.seq,
                    &job.sub_id,
                    job.attempt,
                    job.published_at_ms,
                    now,
                    crate::obs::Outcome::Expired,
                );
            }
        }
    }
    inner
        .obs
        .record_outcomes(report.delivered as u64, delta.failed, delta.mediated);
    inner.stats.merge(&delta);
    delivered
}

/// Attempt every due redelivery at the current virtual time, merging
/// outcomes into the broker's stats and metrics.
fn pump_reliability(inner: &MessengerInner) -> PumpReport {
    let Some(rel) = inner.reliability.read().clone() else {
        return PumpReport::default();
    };
    let now = inner.net.clock().now_ms();
    let report = rel.pump(now, &|to, env, is_retry| {
        let class = if is_retry {
            AttemptClass::Retry
        } else {
            AttemptClass::First
        };
        inner
            .net
            .send_class(to, env, class)
            .map_err(|e| FailKind::of(&e))
    });
    for b in &report.backoffs_ms {
        inner.obs.record_backoff(*b);
    }
    for _ in 0..report.dead_lettered {
        inner.obs.record_dead_letter();
    }
    #[cfg(feature = "obs")]
    for ev in &report.events {
        use crate::reliability::PumpEventKind;
        match ev.kind {
            PumpEventKind::Redelivered => inner.obs.resolve(
                ev.seq,
                &ev.sub_id,
                ev.attempt,
                ev.published_at_ms,
                ev.at_ms,
                crate::obs::Outcome::Delivered,
            ),
            PumpEventKind::Requeued { .. } => {
                inner
                    .obs
                    .retry(ev.seq, &ev.sub_id, ev.attempt, ev.at_ms, ev.dur_ns);
            }
            PumpEventKind::DeadLettered => {
                inner
                    .obs
                    .dead_letter(ev.seq, &ev.sub_id, ev.attempt.saturating_add(1), ev.at_ms);
                inner.obs.resolve(
                    ev.seq,
                    &ev.sub_id,
                    ev.attempt,
                    ev.published_at_ms,
                    ev.at_ms,
                    crate::obs::Outcome::DeadLettered,
                );
            }
        }
    }
    inner.stats.merge(&report.delta);
    refresh_reliability_gauges(inner, &rel);
    report
}

/// Push the redelivery-depth and open-breaker gauges.
fn refresh_reliability_gauges(inner: &MessengerInner, rel: &ReliabilityState) {
    inner.obs.set_redelivery_depth(rel.depth() as i64);
    let (open, _) = rel.breaker_census(inner.net.clock().now_ms());
    inner.obs.set_breakers_open(open as i64);
}

fn family(d: SpecDialect) -> u8 {
    match d {
        SpecDialect::Wse(_) => 0,
        SpecDialect::Wsn(_) => 1,
    }
}

/// Forget a removed subscription's redelivery channel (if any),
/// resolving any pending deliveries it still held as expired.
fn forget_reliability(inner: &MessengerInner, id: &str) {
    if let Some(rel) = inner.reliability.read().as_ref() {
        let dropped = rel.forget(id);
        #[cfg(feature = "obs")]
        {
            let now = inner.net.clock().now_ms();
            for p in &dropped {
                inner.obs.resolve(
                    p.seq,
                    id,
                    p.attempts + p.strikes,
                    p.published_at_ms,
                    now,
                    crate::obs::Outcome::Expired,
                );
            }
        }
        #[cfg(not(feature = "obs"))]
        drop(dropped);
    }
}

/// Remove a subscription after a delivery failure, sending the WSE
/// `SubscriptionEnd` when the subscriber asked for one.
fn drop_failed(inner: &MessengerInner, id: &str) {
    forget_reliability(inner, id);
    if let Some(sub) = inner.registry.remove(id) {
        if let (SpecDialect::Wse(v), Some(end_to)) = (sub.spec, &sub.end_to) {
            let codec = WseCodec::new(v);
            let manager = subscription_epr(inner, &sub.id, sub.spec);
            let env = codec.subscription_end(
                end_to,
                &manager,
                EndStatus::DeliveryFailure,
                Some("the broker could not deliver notifications"),
            );
            let _ = inner.net.send(&end_to.address, env);
        }
    }
}

fn subscription_epr(inner: &MessengerInner, id: &str, spec: SpecDialect) -> EndpointReference {
    let epr = EndpointReference::new(inner.manager_uri.clone());
    match spec {
        SpecDialect::Wse(v) if v.id_in_reference_parameters() => epr.with_reference(
            v.wsa(),
            Element::ns(v.ns(), "Identifier", "wse").with_text(id),
        ),
        SpecDialect::Wse(_) => epr,
        // Kept in lockstep with the cached render path, which patches
        // the same EPR shape into its SubscriptionReference prototype.
        SpecDialect::Wsn(v) => crate::render::wsn_subscription_epr(v, &inner.manager_uri, id),
    }
}

// --------------------------------------------------- subscribe paths

fn wse_subscribe(
    inner: &MessengerInner,
    v: WseVersion,
    request: &Envelope,
) -> Result<Envelope, Fault> {
    let codec = WseCodec::new(v);
    let req = codec.parse_subscribe(request)?;
    let mut filters = UnifiedFilters::default();
    if let Some(f) = &req.filter {
        if f.dialect != wsm_eventing::XPATH_DIALECT {
            return Err(
                Fault::sender("the requested filter dialect is not supported")
                    .with_subcode("wse:FilteringNotSupported"),
            );
        }
        // Compile once at Subscribe time; the Arc'd program is shared
        // by every subsequent match.
        let compiled = wsm_xpath::CompiledFilter::compile(&f.expression).map_err(|e| {
            Fault::sender(format!("invalid XPath filter: {e}"))
                .with_subcode("wse:FilteringNotSupported")
        })?;
        filters.content.push(std::sync::Arc::new(compiled));
    }
    let mode = match req.mode {
        wsm_eventing::DeliveryMode::Push => BrokerDeliveryMode::Push,
        wsm_eventing::DeliveryMode::Pull => BrokerDeliveryMode::Pull,
        wsm_eventing::DeliveryMode::Wrapped => BrokerDeliveryMode::Wrapped,
    };
    let now = inner.net.clock().now_ms();
    let expires_at = req.expires.map(|e| e.absolute(now));
    let id = inner.registry.insert(
        SpecDialect::Wse(v),
        req.notify_to,
        req.end_to,
        filters,
        mode,
        false,
        expires_at,
    );
    let handle = wsm_eventing::SubscriptionHandle {
        manager: subscription_epr(inner, &id, SpecDialect::Wse(v)),
        id,
        expires: req.expires,
        version: v,
    };
    Ok(codec.subscribe_response(&handle))
}

fn wsn_subscribe(
    inner: &MessengerInner,
    v: WsnVersion,
    request: &Envelope,
) -> Result<Envelope, Fault> {
    let codec = WsnCodec::new(v);
    let req = codec.parse_subscribe(request)?;
    let mut filters = UnifiedFilters::default();
    for f in &req.filters {
        match f {
            WsnFilter::Topic(t) => filters.topics.push(t.clone()),
            WsnFilter::ProducerProperties(x) => {
                let compiled = wsm_xpath::CompiledFilter::compile(x).map_err(|e| {
                    Fault::sender(format!("invalid ProducerProperties filter: {e}"))
                        .with_subcode("wsnt:InvalidFilterFault")
                })?;
                filters.producer_props.push(std::sync::Arc::new(compiled))
            }
            WsnFilter::MessageContent {
                dialect,
                expression,
            } => {
                if dialect != wsm_notification::XPATH_DIALECT {
                    return Err(Fault::sender("unsupported MessageContent dialect")
                        .with_subcode("wsnt:InvalidFilterFault"));
                }
                let compiled = wsm_xpath::CompiledFilter::compile(expression).map_err(|e| {
                    Fault::sender(format!("invalid MessageContent filter: {e}"))
                        .with_subcode("wsnt:InvalidFilterFault")
                })?;
                filters.content.push(std::sync::Arc::new(compiled))
            }
        }
    }
    // Seed the topic space from concrete topic filters so that
    // GetCurrentMessage and demand bookkeeping can see them.
    {
        let mut space = inner.topic_space.lock();
        for t in &filters.topics {
            if let Some(p) = wsm_topics::TopicPath::parse(t.text()) {
                space.add(&p);
            }
        }
    }
    let now = inner.net.clock().now_ms();
    let termination = req.initial_termination.map(|t| t.absolute(now));
    let id = inner.registry.insert(
        SpecDialect::Wsn(v),
        req.consumer,
        None,
        filters,
        BrokerDeliveryMode::Push,
        req.use_raw,
        termination,
    );
    Ok(codec.subscribe_response(
        &EndpointReference::new(inner.manager_uri.clone()),
        &id,
        now,
        termination,
    ))
}

// ------------------------------------------------------- main handler

struct MessengerHandler {
    inner: Arc<MessengerInner>,
}

/// Every namespace the broker processes: both spec families (all
/// versions), the three WS-Addressing versions, WSRF, and the broker's
/// own extension namespace.
fn understood_namespaces() -> Vec<&'static str> {
    let mut out = vec![
        wsm_wsrf::WSRF_RL_NS,
        wsm_wsrf::WSRF_RP_NS,
        crate::render::WSM_NS,
    ];
    for d in SpecDialect::ALL {
        match d {
            SpecDialect::Wse(v) => out.push(v.ns()),
            SpecDialect::Wsn(v) => {
                out.push(v.ns());
                out.push(v.brokered_ns());
            }
        }
    }
    for w in [
        wsm_addressing::WsaVersion::V200303,
        wsm_addressing::WsaVersion::V200408,
        wsm_addressing::WsaVersion::V200508,
    ] {
        out.push(w.ns());
    }
    out
}

impl SoapHandler for MessengerHandler {
    fn handle(&self, request: Envelope) -> Result<Option<Envelope>, Fault> {
        let inner = &self.inner;
        wsm_soap::check_must_understand(&request, &understood_namespaces())?;
        let body = request.body().ok_or_else(|| Fault::sender("empty body"))?;
        // Observability operations short-circuit before dialect
        // detection: they live in the broker's own namespace and must
        // not perturb the pipeline they report on.
        #[cfg(feature = "obs")]
        if body.name.is(crate::render::WSM_NS, "GetMetrics") {
            return get_metrics(inner).map(Some);
        }
        #[cfg(feature = "obs")]
        if body.name.is(crate::render::WSM_NS, "GetTrace") {
            return get_trace(inner, body).map(Some);
        }
        #[cfg(not(feature = "obs"))]
        if body.name.is(crate::render::WSM_NS, "GetMetrics")
            || body.name.is(crate::render::WSM_NS, "GetTrace")
        {
            return Err(Fault::receiver(
                "observability is compiled out of this broker (the `obs` feature is disabled)",
            ));
        }
        // Dead-letter operations are part of the delivery contract,
        // not observability — available with or without `obs`.
        if body.name.is(crate::render::WSM_NS, "GetDeadLetters") {
            return get_dead_letters(inner).map(Some);
        }
        if body.name.is(crate::render::WSM_NS, "RedeliverDeadLetters") {
            return redeliver_dead_letters_op(inner).map(Some);
        }
        let seq = inner.obs.next_seq();
        let detect_timer = inner.obs.start();
        let dialect = SpecDialect::detect(&request);
        inner.obs.stage(
            Stage::Detect,
            seq,
            detect_timer,
            inner.net.clock().now_ms(),
            1,
        );
        match dialect {
            Some(SpecDialect::Wse(v)) => {
                if body.name.is(v.ns(), "Subscribe") {
                    return wse_subscribe(inner, v, &request).map(Some);
                }
                Err(Fault::sender(format!(
                    "unsupported WS-Eventing operation {} at the broker endpoint",
                    body.name.clark()
                )))
            }
            Some(SpecDialect::Wsn(v)) => {
                let codec = WsnCodec::new(v);
                if body.name.is(v.ns(), "Subscribe") {
                    return wsn_subscribe(inner, v, &request).map(Some);
                }
                if let Some(msgs) = codec.parse_notify(&request) {
                    // Every NotificationMessage in the batch shares the
                    // request's trace seq: one inbound Notify is one
                    // trace, however many messages it carries.
                    for m in msgs {
                        let ev = InternalEvent {
                            topic: m.topic,
                            payload: SharedElement::new(m.message),
                            producer: m.producer,
                            origin: Some(SpecDialect::Wsn(v)),
                        };
                        ingest_seq(inner, ev, seq);
                    }
                    return Ok(None);
                }
                if body.name.is(v.ns(), "GetCurrentMessage") {
                    return get_current_message(inner, v, body).map(Some);
                }
                if body.name.is(v.brokered_ns(), "RegisterPublisher") {
                    let (publisher, topics, demand) = codec.parse_register_publisher(&request)?;
                    if demand {
                        return Err(Fault::sender(
                            "WS-Messenger accepts demand-based registrations only via the \
                             wsm-notification broker; register without Demand here",
                        ));
                    }
                    let _ = publisher;
                    {
                        let mut space = inner.topic_space.lock();
                        for t in &topics {
                            if let Some(p) = wsm_topics::TopicPath::parse(t.text()) {
                                space.add(&p);
                            }
                        }
                    }
                    let n = inner
                        .publisher_registrations
                        .fetch_add(1, Ordering::Relaxed)
                        + 1;
                    let reg = EndpointReference::new(format!("{}/registrations/{n}", inner.uri));
                    return Ok(Some(codec.register_publisher_response(&reg)));
                }
                Err(Fault::sender(format!(
                    "unsupported WS-Notification operation {}",
                    body.name.clark()
                )))
            }
            None => {
                // A bare payload: treat as a raw publication.
                let ev = InternalEvent::raw(body.clone());
                ingest_seq(inner, ev, seq);
                Ok(None)
            }
        }
    }
}

/// `GetMetrics` (broker extension namespace): the Prometheus-style
/// text exposition wrapped in a SOAP response.
#[cfg(feature = "obs")]
fn get_metrics(inner: &MessengerInner) -> Result<Envelope, Fault> {
    inner.obs.set_subscriptions(inner.registry.len() as i64);
    Ok(Envelope::new(wsm_soap::SoapVersion::V11).with_body(
        Element::ns(crate::render::WSM_NS, "GetMetricsResponse", "wsm").with_child(
            Element::ns(crate::render::WSM_NS, "Exposition", "wsm")
                .with_text(inner.obs.prometheus()),
        ),
    ))
}

/// `GetTrace` (broker extension namespace): the buffered pipeline
/// spans as `Span` elements. `Drain="true"` empties the ring.
#[cfg(feature = "obs")]
fn get_trace(inner: &MessengerInner, body: &Element) -> Result<Envelope, Fault> {
    let spans = if body.attr("Drain") == Some("true") {
        inner.obs.drain_spans()
    } else {
        inner.obs.spans()
    };
    let mut resp = Element::ns(crate::render::WSM_NS, "GetTraceResponse", "wsm");
    for s in spans {
        let mut el = Element::ns(crate::render::WSM_NS, "Span", "wsm");
        el.set_attr(wsm_xml::QName::local("Seq"), s.seq.to_string());
        el.set_attr(wsm_xml::QName::local("Stage"), s.stage.name());
        el.set_attr(wsm_xml::QName::local("AtMs"), s.at_ms.to_string());
        el.set_attr(wsm_xml::QName::local("DurNs"), s.dur_ns.to_string());
        el.set_attr(wsm_xml::QName::local("Items"), s.items.to_string());
        if let Some(sub) = &s.subscriber {
            el.set_attr(wsm_xml::QName::local("Subscriber"), sub.clone());
            el.set_attr(wsm_xml::QName::local("Attempt"), s.attempt.to_string());
        }
        if let Some(o) = s.outcome {
            el.set_attr(wsm_xml::QName::local("Outcome"), o.name());
        }
        resp.push(el);
    }
    Ok(Envelope::new(wsm_soap::SoapVersion::V11).with_body(resp))
}

/// `GetDeadLetters` (broker extension namespace): every message in the
/// dead-letter store as a `wsm:DeadLetter` element carrying the
/// subscription, consumer address, reason, budget spent, virtual
/// timestamp, and the undeliverable payload itself.
fn get_dead_letters(inner: &MessengerInner) -> Result<Envelope, Fault> {
    let letters = inner
        .reliability
        .read()
        .as_ref()
        .map_or_else(Vec::new, |r| r.dead_letters());
    let mut resp = Element::ns(crate::render::WSM_NS, "GetDeadLettersResponse", "wsm");
    for dl in letters {
        let mut el = Element::ns(crate::render::WSM_NS, "DeadLetter", "wsm");
        el.set_attr(wsm_xml::QName::local("Sub"), dl.sub_id);
        el.set_attr(wsm_xml::QName::local("Address"), dl.address);
        el.set_attr(wsm_xml::QName::local("Reason"), dl.reason);
        el.set_attr(wsm_xml::QName::local("Attempts"), dl.attempts.to_string());
        el.set_attr(wsm_xml::QName::local("Strikes"), dl.strikes.to_string());
        el.set_attr(wsm_xml::QName::local("AtMs"), dl.at_ms.to_string());
        if let Some(body) = dl.envelope.body() {
            el.push(body.clone());
        }
        resp.push(el);
    }
    Ok(Envelope::new(wsm_soap::SoapVersion::V11).with_body(resp))
}

/// `RedeliverDeadLetters` (broker extension namespace): requeue every
/// dead letter with a fresh budget and report how many.
fn redeliver_dead_letters_op(inner: &MessengerInner) -> Result<Envelope, Fault> {
    let count = match inner.reliability.read().clone() {
        Some(rel) => rel.redeliver_dead(inner.net.clock().now_ms()),
        None => 0,
    };
    let mut resp = Element::ns(crate::render::WSM_NS, "RedeliverDeadLettersResponse", "wsm");
    resp.set_attr(wsm_xml::QName::local("Count"), count.to_string());
    Ok(Envelope::new(wsm_soap::SoapVersion::V11).with_body(resp))
}

fn get_current_message(
    inner: &MessengerInner,
    v: WsnVersion,
    body: &Element,
) -> Result<Envelope, Fault> {
    let codec = WsnCodec::new(v);
    let topic_el = body
        .child_ns(v.ns(), "Topic")
        .ok_or_else(|| Fault::sender("GetCurrentMessage requires a Topic"))?;
    let dialect = topic_el
        .attr("Dialect")
        .unwrap_or(wsm_topics::expression::CONCRETE_DIALECT);
    let expr = TopicExpression::compile_uri(dialect, topic_el.text().trim())
        .map_err(|e| Fault::sender(format!("invalid topic: {e}")))?;
    let space = inner.topic_space.lock();
    let current = inner.current.lock();
    let last = space
        .expand(&expr)
        .into_iter()
        .rev()
        .find_map(|t| current.get(&t.to_string()).cloned());
    match last {
        Some(m) => Ok(codec.get_current_message_response(Some(m.element()))),
        None => Err(Fault::sender("no current message on that topic")
            .with_subcode("wsnt:NoCurrentMessageOnTopicFault")),
    }
}

// ---------------------------------------------------- manager handler

struct ManagerHandler {
    inner: Arc<MessengerInner>,
}

impl SoapHandler for ManagerHandler {
    fn handle(&self, request: Envelope) -> Result<Option<Envelope>, Fault> {
        let inner = &self.inner;
        let dialect = SpecDialect::detect(&request)
            .ok_or_else(|| Fault::sender("cannot determine the specification of this request"))?;
        match dialect {
            SpecDialect::Wse(v) => wse_manage(inner, v, &request).map(Some),
            SpecDialect::Wsn(v) => wsn_manage(inner, v, &request).map(Some),
        }
    }
}

fn wse_manage(
    inner: &MessengerInner,
    v: WseVersion,
    request: &Envelope,
) -> Result<Envelope, Fault> {
    let codec = WseCodec::new(v);
    let ns = v.ns();
    let body = request.body().ok_or_else(|| Fault::sender("empty body"))?;
    let id = codec
        .extract_subscription_id(request)
        .ok_or_else(|| Fault::sender("no subscription identifier in request"))?;
    let now = inner.net.clock().now_ms();
    inner.registry.sweep_expired(now);
    let unknown = || Fault::sender(format!("unknown subscription {id}"));

    if body.name.is(ns, "Renew") {
        inner.registry.get(&id).ok_or_else(unknown)?;
        let requested = body
            .child_ns(ns, "Expires")
            .and_then(|e| Expires::parse(&e.text()));
        inner
            .registry
            .set_expiry(&id, requested.map(|e| e.absolute(now)));
        Ok(codec.management_response("Renew", requested))
    } else if body.name.is(ns, "GetStatus") {
        if !v.has_get_status() {
            return Err(Fault::sender("GetStatus is not defined in this version"));
        }
        let status = inner.registry.status(&id).ok_or_else(unknown)?;
        Ok(codec.management_response("GetStatus", status.expires_at_ms.map(Expires::At)))
    } else if body.name.is(ns, "Unsubscribe") {
        inner.registry.remove(&id).ok_or_else(unknown)?;
        forget_reliability(inner, &id);
        Ok(codec.management_response("Unsubscribe", None))
    } else if body.name.is(ns, "Pull") {
        inner.registry.get(&id).ok_or_else(unknown)?;
        let max = body
            .attr("MaxElements")
            .and_then(|m| m.parse().ok())
            .unwrap_or(usize::MAX);
        let events = inner.registry.drain_queue(&id, max);
        // Handing the events to the puller is the terminal outcome for
        // a pull subscription: resolve each one's causal timeline.
        #[cfg(feature = "obs")]
        {
            let resolved_at = inner.net.clock().now_ms();
            for ev in &events {
                inner.obs.resolve(
                    ev.seq,
                    &id,
                    0,
                    ev.queued_at_ms,
                    resolved_at,
                    crate::obs::Outcome::Delivered,
                );
            }
        }
        let payloads: Vec<_> = events.into_iter().map(|e| e.payload).collect();
        Ok(codec.pull_response_shared(&payloads))
    } else {
        Err(Fault::sender(format!(
            "unsupported operation {}",
            body.name.clark()
        )))
    }
}

fn wsn_manage(
    inner: &MessengerInner,
    v: WsnVersion,
    request: &Envelope,
) -> Result<Envelope, Fault> {
    let codec = WsnCodec::new(v);
    let ns = v.ns();
    let body = request.body().ok_or_else(|| Fault::sender("empty body"))?;
    let id = codec
        .extract_subscription_id(request)
        .ok_or_else(|| Fault::sender("no SubscriptionId in request"))?;
    let now = inner.net.clock().now_ms();
    inner.registry.sweep_expired(now);
    let unknown = || {
        Fault::sender(format!("unknown subscription {id}"))
            .with_subcode("wsnt:ResourceUnknownFault")
    };

    if body.name.is(ns, "Renew") {
        if !v.has_native_renew_unsubscribe() {
            return Err(Fault::sender("WSN 1.0 renews via WSRF SetTerminationTime"));
        }
        inner.registry.get(&id).ok_or_else(unknown)?;
        let t = body
            .child_ns(ns, "TerminationTime")
            .and_then(|e| Termination::parse(&e.text()))
            .ok_or_else(|| Fault::sender("Renew requires a TerminationTime"))?;
        inner.registry.set_expiry(&id, Some(t.absolute(now)));
        Ok(codec.management_response("Renew"))
    } else if body.name.is(ns, "Unsubscribe") {
        if !v.has_native_renew_unsubscribe() {
            return Err(Fault::sender("WSN 1.0 unsubscribes via WSRF Destroy"));
        }
        inner.registry.remove(&id).ok_or_else(unknown)?;
        forget_reliability(inner, &id);
        Ok(codec.management_response("Unsubscribe"))
    } else if body.name.is(ns, "PauseSubscription") {
        if !inner.registry.set_paused(&id, true) {
            return Err(unknown());
        }
        Ok(codec.management_response("PauseSubscription"))
    } else if body.name.is(ns, "ResumeSubscription") {
        if !inner.registry.set_paused(&id, false) {
            return Err(unknown());
        }
        Ok(codec.management_response("ResumeSubscription"))
    } else if body.name.is(wsm_wsrf::WSRF_RL_NS, "Destroy") {
        inner.registry.remove(&id).ok_or_else(unknown)?;
        forget_reliability(inner, &id);
        Ok(
            Envelope::new(wsm_soap::SoapVersion::V11).with_body(Element::ns(
                wsm_wsrf::WSRF_RL_NS,
                "DestroyResponse",
                "wsrf-rl",
            )),
        )
    } else if body.name.is(wsm_wsrf::WSRF_RL_NS, "SetTerminationTime") {
        inner.registry.get(&id).ok_or_else(unknown)?;
        let t = body
            .child_ns(wsm_wsrf::WSRF_RL_NS, "RequestedTerminationTime")
            .and_then(|e| Termination::parse(&e.text()))
            .ok_or_else(|| Fault::sender("missing RequestedTerminationTime"))?;
        let abs = t.absolute(now);
        inner.registry.set_expiry(&id, Some(abs));
        Ok(Envelope::new(wsm_soap::SoapVersion::V11).with_body(
            Element::ns(
                wsm_wsrf::WSRF_RL_NS,
                "SetTerminationTimeResponse",
                "wsrf-rl",
            )
            .with_child(
                Element::ns(wsm_wsrf::WSRF_RL_NS, "NewTerminationTime", "wsrf-rl")
                    .with_text(wsm_xml::xsd::format_datetime(abs)),
            ),
        ))
    } else if body.name.is(wsm_wsrf::WSRF_RP_NS, "GetResourceProperty") {
        let sub = inner.registry.get(&id).ok_or_else(unknown)?;
        let status = inner.registry.status(&id).ok_or_else(unknown)?;
        let wanted = body.text();
        let local = wanted.trim().rsplit(':').next().unwrap_or("");
        let mut resp = Element::ns(
            wsm_wsrf::WSRF_RP_NS,
            "GetResourcePropertyResponse",
            "wsrf-rp",
        );
        match local {
            "Paused" => {
                resp.push(Element::ns(ns, "Paused", "wsnt").with_text(status.paused.to_string()))
            }
            "TerminationTime" => {
                if let Some(t) = status.expires_at_ms {
                    resp.push(
                        Element::ns(ns, "TerminationTime", "wsnt")
                            .with_text(wsm_xml::xsd::format_datetime(t)),
                    );
                }
            }
            "ConsumerReference" => resp.push(
                Element::ns(ns, "ConsumerReference", "wsnt")
                    .with_text(sub.consumer.address.clone()),
            ),
            _ => {}
        }
        Ok(Envelope::new(wsm_soap::SoapVersion::V11).with_body(resp))
    } else {
        Err(Fault::sender(format!(
            "unsupported operation {}",
            body.name.clark()
        )))
    }
}
