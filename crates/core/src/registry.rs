//! The broker's unified subscription registry.
//!
//! Each subscription remembers which dialect created it ("the
//! specification type of a target event consumer is determined by the
//! subscription request message type", §VII) plus a *unified* compiled
//! filter set covering both specs' filter models: WS-Eventing's single
//! XPath filter compiles into `content`; WS-Notification's three filter
//! kinds compile into `topics` / `content` / `producer_props`.

use crate::detect::SpecDialect;
use crate::event::InternalEvent;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use wsm_addressing::EndpointReference;
use wsm_topics::TopicExpression;
use wsm_xml::{Element, SharedElement};
use wsm_xpath::XPath;

/// Unified compiled filters.
#[derive(Debug, Clone, Default)]
pub struct UnifiedFilters {
    /// Topic expressions (WSN). Any match admits; an event *without* a
    /// topic fails a topic filter.
    pub topics: Vec<TopicExpression>,
    /// Content predicates (WSE default filter, WSN MessageContent).
    pub content: Vec<XPath>,
    /// Producer-properties predicates (WSN only).
    pub producer_props: Vec<XPath>,
}

impl UnifiedFilters {
    /// Does the event pass every supplied filter kind?
    pub fn admit(&self, event: &InternalEvent, producer_properties: Option<&Element>) -> bool {
        if !self.topics.is_empty() {
            match &event.topic {
                Some(t) => {
                    if !self.topics.iter().any(|e| e.matches(t)) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        if !self.content.is_empty()
            && !self
                .content
                .iter()
                .any(|x| x.matches(event.payload_element()))
        {
            return false;
        }
        if !self.producer_props.is_empty() {
            match producer_properties {
                Some(doc) => {
                    if !self.producer_props.iter().any(|x| x.matches(doc)) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }
}

/// How the consumer wants messages delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrokerDeliveryMode {
    /// Push one message per event.
    Push,
    /// Queue at the broker; the consumer pulls (WSE pull mode).
    Pull,
    /// Buffer and push batches (WSE wrapped mode).
    Wrapped,
}

/// One live broker subscription.
#[derive(Debug, Clone)]
pub struct BrokerSubscription {
    /// Identifier minted by the registry.
    pub id: String,
    /// The dialect the subscription was created in — and therefore the
    /// dialect its notifications are rendered in.
    pub spec: SpecDialect,
    /// Where notifications go.
    pub consumer: EndpointReference,
    /// Where WSE `SubscriptionEnd` notices go (WSE only).
    pub end_to: Option<EndpointReference>,
    /// Unified filters.
    pub filters: UnifiedFilters,
    /// Delivery mode.
    pub mode: BrokerDeliveryMode,
    /// WSN raw-payload delivery (`UseRaw`).
    pub use_raw: bool,
    /// Paused (WSN pause/resume).
    pub paused: bool,
    /// Absolute expiry on the virtual clock.
    pub expires_at_ms: Option<u64>,
    /// Queued events (pull mode), shared with the originating
    /// publication — queueing is an `Arc` bump, not a tree clone.
    pub queue: VecDeque<Arc<SharedElement>>,
    /// Buffered events (wrapped mode), shared the same way.
    pub wrap_buffer: Vec<Arc<SharedElement>>,
}

impl BrokerSubscription {
    /// Is the subscription expired at `now`?
    pub fn expired(&self, now_ms: u64) -> bool {
        self.expires_at_ms.is_some_and(|t| t <= now_ms)
    }
}

/// Thread-safe registry with a topic index.
///
/// Subscriptions are bucketed by how an event's topic can reach them:
/// by the literal root names their topic expressions open with (the
/// common case — Simple and Concrete expressions always, Full ones
/// without a leading wildcard), a side list for leading-wildcard
/// expressions, and a side list for subscriptions with no topic filter
/// at all. Matching a topical event then touches only the event root's
/// bucket plus the two side lists — O(matching subs + wildcards)
/// instead of O(all subs) — and a topicless event touches only the
/// no-topic-filter list, since a topic filter never admits one.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

#[derive(Default)]
struct RegistryInner {
    subs: HashMap<String, BrokerSubscription>,
    next_id: u64,
    /// Root topic name → ids of subscriptions every one of whose topic
    /// expressions opens with a literal root.
    by_root: HashMap<String, Vec<String>>,
    /// Ids with at least one leading-wildcard topic expression.
    wildcard: Vec<String>,
    /// Ids with no topic filter at all.
    unfiltered: Vec<String>,
}

/// Where a subscription lives in the topic index.
enum IndexSlot {
    Roots(Vec<String>),
    Wildcard,
    Unfiltered,
}

fn index_slot(filters: &UnifiedFilters) -> IndexSlot {
    if filters.topics.is_empty() {
        return IndexSlot::Unfiltered;
    }
    let mut roots: Vec<String> = Vec::new();
    for expr in &filters.topics {
        match expr.index_roots() {
            None => return IndexSlot::Wildcard,
            Some(rs) => roots.extend(rs.into_iter().map(str::to_string)),
        }
    }
    roots.sort();
    roots.dedup();
    IndexSlot::Roots(roots)
}

impl RegistryInner {
    fn link(&mut self, id: &str, filters: &UnifiedFilters) {
        match index_slot(filters) {
            IndexSlot::Unfiltered => self.unfiltered.push(id.to_string()),
            IndexSlot::Wildcard => self.wildcard.push(id.to_string()),
            IndexSlot::Roots(roots) => {
                for root in roots {
                    self.by_root.entry(root).or_default().push(id.to_string());
                }
            }
        }
    }

    fn unlink(&mut self, id: &str, filters: &UnifiedFilters) {
        match index_slot(filters) {
            IndexSlot::Unfiltered => self.unfiltered.retain(|x| x != id),
            IndexSlot::Wildcard => self.wildcard.retain(|x| x != id),
            IndexSlot::Roots(roots) => {
                for root in roots {
                    if let Some(bucket) = self.by_root.get_mut(&root) {
                        bucket.retain(|x| x != id);
                        if bucket.is_empty() {
                            self.by_root.remove(&root);
                        }
                    }
                }
            }
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Insert a subscription (id is minted here).
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &self,
        spec: SpecDialect,
        consumer: EndpointReference,
        end_to: Option<EndpointReference>,
        filters: UnifiedFilters,
        mode: BrokerDeliveryMode,
        use_raw: bool,
        expires_at_ms: Option<u64>,
    ) -> String {
        let mut inner = self.inner.lock();
        inner.next_id += 1;
        let id = format!("wsm-{}", inner.next_id);
        inner.link(&id, &filters);
        inner.subs.insert(
            id.clone(),
            BrokerSubscription {
                id: id.clone(),
                spec,
                consumer,
                end_to,
                filters,
                mode,
                use_raw,
                paused: false,
                expires_at_ms,
                queue: VecDeque::new(),
                wrap_buffer: Vec::new(),
            },
        );
        id
    }

    /// Snapshot one subscription.
    pub fn get(&self, id: &str) -> Option<BrokerSubscription> {
        self.inner.lock().subs.get(id).cloned()
    }

    /// Remove one subscription.
    pub fn remove(&self, id: &str) -> Option<BrokerSubscription> {
        let mut inner = self.inner.lock();
        let sub = inner.subs.remove(id)?;
        inner.unlink(id, &sub.filters);
        Some(sub)
    }

    /// Update expiry. False when unknown.
    pub fn set_expiry(&self, id: &str, expires_at_ms: Option<u64>) -> bool {
        match self.inner.lock().subs.get_mut(id) {
            Some(s) => {
                s.expires_at_ms = expires_at_ms;
                true
            }
            None => false,
        }
    }

    /// Pause / resume. False when unknown.
    pub fn set_paused(&self, id: &str, paused: bool) -> bool {
        match self.inner.lock().subs.get_mut(id) {
            Some(s) => {
                s.paused = paused;
                true
            }
            None => false,
        }
    }

    /// Remove expired subscriptions, returning them.
    pub fn sweep_expired(&self, now_ms: u64) -> Vec<BrokerSubscription> {
        let mut inner = self.inner.lock();
        let ids: Vec<String> = inner
            .subs
            .values()
            .filter(|s| s.expired(now_ms))
            .map(|s| s.id.clone())
            .collect();
        ids.iter()
            .filter_map(|id| {
                let sub = inner.subs.remove(id)?;
                inner.unlink(id, &sub.filters);
                Some(sub)
            })
            .collect()
    }

    /// Live, unpaused subscriptions admitting `event`.
    ///
    /// Candidates come from the topic index: for a topical event, the
    /// bucket of its root plus the wildcard and no-topic-filter side
    /// lists; for a topicless event, only the no-topic-filter list
    /// (topic filters never admit topicless events). Each candidate
    /// still runs the full [`UnifiedFilters::admit`] check, so the
    /// index is purely a pruning step and cannot change semantics.
    pub fn matching(
        &self,
        event: &InternalEvent,
        producer_properties: Option<&Element>,
        now_ms: u64,
    ) -> Vec<BrokerSubscription> {
        let inner = self.inner.lock();
        let mut candidates: Vec<&str> = Vec::new();
        if let Some(topic) = &event.topic {
            if let Some(bucket) = inner.by_root.get(topic.root()) {
                candidates.extend(bucket.iter().map(String::as_str));
            }
            candidates.extend(inner.wildcard.iter().map(String::as_str));
        }
        candidates.extend(inner.unfiltered.iter().map(String::as_str));
        candidates
            .into_iter()
            .filter_map(|id| inner.subs.get(id))
            .filter(|s| {
                !s.paused && !s.expired(now_ms) && s.filters.admit(event, producer_properties)
            })
            .cloned()
            .collect()
    }

    /// Queue an event on a pull subscription.
    pub fn queue_event(&self, id: &str, payload: Arc<SharedElement>) -> bool {
        match self.inner.lock().subs.get_mut(id) {
            Some(s) => {
                s.queue.push_back(payload);
                true
            }
            None => false,
        }
    }

    /// Drain up to `max` queued events.
    pub fn drain_queue(&self, id: &str, max: usize) -> Vec<Arc<SharedElement>> {
        match self.inner.lock().subs.get_mut(id) {
            Some(s) => {
                let n = max.min(s.queue.len());
                s.queue.drain(..n).collect()
            }
            None => Vec::new(),
        }
    }

    /// Buffer an event for wrapped delivery.
    pub fn buffer_wrapped(&self, id: &str, payload: Arc<SharedElement>) -> bool {
        match self.inner.lock().subs.get_mut(id) {
            Some(s) => {
                s.wrap_buffer.push(payload);
                true
            }
            None => false,
        }
    }

    /// Take all wrapped buffers.
    pub fn take_wrap_buffers(&self) -> Vec<(String, Vec<Arc<SharedElement>>)> {
        self.inner
            .lock()
            .subs
            .values_mut()
            .filter(|s| !s.wrap_buffer.is_empty())
            .map(|s| (s.id.clone(), std::mem::take(&mut s.wrap_buffer)))
            .collect()
    }

    /// Subscription count.
    pub fn len(&self) -> usize {
        self.inner.lock().subs.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot all subscriptions.
    pub fn all(&self) -> Vec<BrokerSubscription> {
        self.inner.lock().subs.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsm_eventing::WseVersion;

    fn epr() -> EndpointReference {
        EndpointReference::new("http://c")
    }

    fn spec() -> SpecDialect {
        SpecDialect::Wse(WseVersion::Aug2004)
    }

    #[test]
    fn unified_filters_combine_kinds() {
        let f = UnifiedFilters {
            topics: vec![TopicExpression::concrete("storms").unwrap()],
            content: vec![XPath::compile("/e[@sev > 3]").unwrap()],
            producer_props: vec![],
        };
        let hot = InternalEvent::on_topic("storms", Element::local("e").with_attr("sev", "5"));
        let cold = InternalEvent::on_topic("storms", Element::local("e").with_attr("sev", "1"));
        let off_topic =
            InternalEvent::on_topic("traffic", Element::local("e").with_attr("sev", "5"));
        let topicless = InternalEvent::raw(Element::local("e").with_attr("sev", "5"));
        assert!(f.admit(&hot, None));
        assert!(!f.admit(&cold, None));
        assert!(!f.admit(&off_topic, None));
        assert!(!f.admit(&topicless, None), "topic filter needs a topic");
    }

    #[test]
    fn registry_lifecycle() {
        let r = Registry::new();
        let id = r.insert(
            spec(),
            epr(),
            None,
            UnifiedFilters::default(),
            BrokerDeliveryMode::Push,
            false,
            Some(100),
        );
        assert_eq!(r.len(), 1);
        assert!(r.get(&id).is_some());
        assert!(r.set_expiry(&id, Some(500)));
        assert!(r.sweep_expired(200).is_empty());
        assert_eq!(r.sweep_expired(600).len(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn paused_subscriptions_excluded() {
        let r = Registry::new();
        let id = r.insert(
            spec(),
            epr(),
            None,
            UnifiedFilters::default(),
            BrokerDeliveryMode::Push,
            false,
            None,
        );
        let ev = InternalEvent::raw(Element::local("x"));
        assert_eq!(r.matching(&ev, None, 0).len(), 1);
        r.set_paused(&id, true);
        assert_eq!(r.matching(&ev, None, 0).len(), 0);
    }

    fn topic_filters(expr: TopicExpression) -> UnifiedFilters {
        UnifiedFilters {
            topics: vec![expr],
            content: vec![],
            producer_props: vec![],
        }
    }

    fn insert_with(r: &Registry, filters: UnifiedFilters) -> String {
        r.insert(
            spec(),
            epr(),
            None,
            filters,
            BrokerDeliveryMode::Push,
            false,
            None,
        )
    }

    #[test]
    fn topic_index_routes_each_event_shape() {
        let r = Registry::new();
        let rooted = insert_with(
            &r,
            topic_filters(TopicExpression::concrete("storms/hail").unwrap()),
        );
        let union = insert_with(
            &r,
            topic_filters(TopicExpression::full("storms/* | traffic").unwrap()),
        );
        let wild = insert_with(&r, topic_filters(TopicExpression::full("//hail").unwrap()));
        let open = insert_with(&r, UnifiedFilters::default());

        let ids = |ev: &InternalEvent| -> Vec<String> {
            let mut v: Vec<String> = r.matching(ev, None, 0).into_iter().map(|s| s.id).collect();
            v.sort();
            v
        };

        let hail = InternalEvent::on_topic("storms/hail", Element::local("e"));
        let mut expect = vec![rooted.clone(), union.clone(), wild.clone(), open.clone()];
        expect.sort();
        assert_eq!(ids(&hail), expect);

        let traffic = InternalEvent::on_topic("traffic", Element::local("e"));
        let mut expect = vec![union.clone(), open.clone()];
        expect.sort();
        assert_eq!(ids(&traffic), expect);

        // A root no expression opens with reaches only wildcard +
        // unfiltered candidates; the wildcard one still must admit.
        let deep_hail = InternalEvent::on_topic("alerts/hail", Element::local("e"));
        let mut expect = vec![wild.clone(), open.clone()];
        expect.sort();
        assert_eq!(ids(&deep_hail), expect);

        // Topicless events bypass every topic-filtered subscription.
        let topicless = InternalEvent::raw(Element::local("e"));
        assert_eq!(ids(&topicless), vec![open.clone()]);

        // Removal unlinks from every bucket it was linked into.
        r.remove(&union);
        let mut expect = vec![rooted, wild, open];
        expect.sort();
        assert_eq!(ids(&hail), expect);
    }

    #[test]
    fn sweep_unlinks_from_topic_index() {
        let r = Registry::new();
        let id = r.insert(
            spec(),
            epr(),
            None,
            topic_filters(TopicExpression::simple("storms").unwrap()),
            BrokerDeliveryMode::Push,
            false,
            Some(10),
        );
        let ev = InternalEvent::on_topic("storms", Element::local("e"));
        assert_eq!(r.matching(&ev, None, 0).len(), 1);
        let swept = r.sweep_expired(20);
        assert_eq!(swept.len(), 1);
        assert_eq!(swept[0].id, id);
        assert!(r.matching(&ev, None, 30).is_empty());
    }

    #[test]
    fn queues_and_buffers() {
        let r = Registry::new();
        let id = r.insert(
            spec(),
            epr(),
            None,
            UnifiedFilters::default(),
            BrokerDeliveryMode::Pull,
            false,
            None,
        );
        r.queue_event(&id, SharedElement::new(Element::local("a")));
        r.queue_event(&id, SharedElement::new(Element::local("b")));
        assert_eq!(r.drain_queue(&id, 1).len(), 1);
        assert_eq!(r.drain_queue(&id, 10).len(), 1);
        r.buffer_wrapped(&id, SharedElement::new(Element::local("c")));
        let buffers = r.take_wrap_buffers();
        assert_eq!(buffers.len(), 1);
        assert_eq!(buffers[0].1.len(), 1);
    }
}
