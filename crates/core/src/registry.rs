//! The broker's unified subscription registry and match index.
//!
//! Each subscription remembers which dialect created it ("the
//! specification type of a target event consumer is determined by the
//! subscription request message type", §VII) plus a *unified* compiled
//! filter set covering both specs' filter models: WS-Eventing's single
//! XPath filter compiles into `content`; WS-Notification's three filter
//! kinds compile into `topics` / `content` / `producer_props`. Filters
//! are compiled once at `Subscribe` time ([`CompiledFilter`]) and the
//! `Arc` handle is cached on the subscription.
//!
//! # The match index
//!
//! The seed evaluated every publication against every subscription, so
//! match cost grew linearly with registry size. The registry now
//! routes each subscription, at insert time, into one of three
//! structures chosen by what its filters can *prove*:
//!
//! * **topic trie** — every subscription with topic filters goes into a
//!   [`TopicTrie`] keyed by its expressions. A publication's topic
//!   walks the trie once and returns exactly the subscriptions whose
//!   topic filter matches; for those candidates the topic check is
//!   already proven and [`UnifiedFilters`] only evaluates the remaining
//!   content/producer-properties filters.
//! * **literal buckets** — a topicless subscription whose only filter
//!   is `path = 'literal'` (the S-ToPSS-style equality predicate) is
//!   grouped by the path's canonical signature and bucketed by
//!   literal. Per publication, each group evaluates its path *once*;
//!   the selected string-values look up buckets directly, so ten
//!   thousand `source = '...'` subscriptions cost one path evaluation
//!   plus a hash probe per value — and a bucket hit is a full proof,
//!   no filter re-runs at all.
//! * **broadcast** — everything the index cannot reason about
//!   (topicless subscriptions with complex content filters, or none).
//!   These still run the full check, now prefiltered by the
//!   required-name bitset and over a shared [`EvalDoc`] built once per
//!   publication.
//!
//! Match cost therefore scales with *matching* subscriptions (plus the
//! broadcast residue), not with registry size.

use crate::detect::SpecDialect;
use crate::event::InternalEvent;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use wsm_addressing::EndpointReference;
use wsm_topics::{TopicExpression, TopicPath, TopicTrie};
use wsm_xml::{Element, SharedElement};
use wsm_xpath::{CompiledFilter, EvalDoc};

/// Unified compiled filters.
#[derive(Debug, Clone, Default)]
pub struct UnifiedFilters {
    /// Topic expressions (WSN). Any match admits; an event *without* a
    /// topic fails a topic filter.
    pub topics: Vec<TopicExpression>,
    /// Content predicates (WSE default filter, WSN MessageContent),
    /// compiled once and shared.
    pub content: Vec<Arc<CompiledFilter>>,
    /// Producer-properties predicates (WSN only).
    pub producer_props: Vec<Arc<CompiledFilter>>,
}

impl UnifiedFilters {
    /// Does the event pass every supplied filter kind?
    ///
    /// Checks run cheapest-first — the topic comparison (segment
    /// equality) before any XPath evaluation — and each XPath filter is
    /// prefiltered by its required-name bitset before being run.
    pub fn admit(&self, event: &InternalEvent, producer_properties: Option<&Element>) -> bool {
        let payload = EvalDoc::new(event.payload_element());
        let props = producer_properties.map(EvalDoc::new);
        self.admit_docs(event.topic.as_ref(), false, &payload, props.as_ref())
    }

    /// [`Self::admit`] over pre-indexed documents, optionally skipping
    /// the topic check when an index has already proven it.
    fn admit_docs(
        &self,
        topic: Option<&TopicPath>,
        topic_proven: bool,
        payload: &EvalDoc,
        props: Option<&EvalDoc>,
    ) -> bool {
        if !topic_proven && !self.topics.is_empty() {
            match topic {
                Some(t) => {
                    if !self.topics.iter().any(|e| e.matches(t)) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        if !self.content.is_empty()
            && !self
                .content
                .iter()
                .any(|f| f.may_match(payload) && f.matches_doc(payload))
        {
            return false;
        }
        if !self.producer_props.is_empty() {
            match props {
                Some(doc) => {
                    if !self
                        .producer_props
                        .iter()
                        .any(|f| f.may_match(doc) && f.matches_doc(doc))
                    {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }
}

/// How the consumer wants messages delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrokerDeliveryMode {
    /// Push one message per event.
    Push,
    /// Queue at the broker; the consumer pulls (WSE pull mode).
    Pull,
    /// Buffer and push batches (WSE wrapped mode).
    Wrapped,
}

/// One live broker subscription: the immutable facts fixed at
/// `Subscribe` time.
///
/// Mutable per-subscription state (pause flag, expiry, delivery
/// queues) lives inside the registry, so matching hands out
/// `Arc<BrokerSubscription>` clones — a refcount bump per match
/// instead of a deep copy of filters and endpoint references.
#[derive(Debug, Clone)]
pub struct BrokerSubscription {
    /// Identifier minted by the registry.
    pub id: String,
    /// The dialect the subscription was created in — and therefore the
    /// dialect its notifications are rendered in.
    pub spec: SpecDialect,
    /// Where notifications go.
    pub consumer: EndpointReference,
    /// Where WSE `SubscriptionEnd` notices go (WSE only).
    pub end_to: Option<EndpointReference>,
    /// Unified filters.
    pub filters: UnifiedFilters,
    /// Delivery mode.
    pub mode: BrokerDeliveryMode,
    /// WSN raw-payload delivery (`UseRaw`).
    pub use_raw: bool,
}

/// Mutable status of a subscription (see [`Registry::status`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriptionStatus {
    /// Paused (WSN pause/resume).
    pub paused: bool,
    /// Absolute expiry on the virtual clock.
    pub expires_at_ms: Option<u64>,
}

/// One event parked in a pull queue or wrapped-mode buffer: the shared
/// payload subtree plus the causal coordinates the broker needs to
/// resolve the delivery timeline when the event finally leaves.
#[derive(Clone)]
pub struct QueuedEvent {
    /// The event payload, shared with the originating publication —
    /// queueing is an `Arc` bump, not a tree clone.
    pub payload: Arc<SharedElement>,
    /// Publication sequence number (the trace id).
    pub seq: u64,
    /// Virtual time the event was published/queued.
    pub queued_at_ms: u64,
}

/// Registry entry: the shared immutable core plus mutable state.
struct SubEntry {
    core: Arc<BrokerSubscription>,
    paused: bool,
    expires_at_ms: Option<u64>,
    /// Queued events (pull mode).
    queue: VecDeque<QueuedEvent>,
    /// Buffered events (wrapped mode).
    wrap_buffer: Vec<QueuedEvent>,
}

impl SubEntry {
    fn expired(&self, now_ms: u64) -> bool {
        self.expires_at_ms.is_some_and(|t| t <= now_ms)
    }

    fn live(&self, now_ms: u64) -> bool {
        !self.paused && !self.expired(now_ms)
    }
}

/// Thread-safe registry with a match index (see the module docs).
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

#[derive(Default)]
struct RegistryInner {
    /// Entries keyed by the numeric part of the minted id.
    by_key: HashMap<u64, SubEntry>,
    /// Public id string → numeric key.
    key_of: HashMap<String, u64>,
    next_id: u64,
    index: MatchIndex,
}

/// Subscriptions bucketed by filters sharing one `path = 'literal'`
/// signature. `rep` is any member's compiled filter; equal signatures
/// select the same nodes, so one evaluation of `rep`'s path serves the
/// whole group.
struct LiteralGroup {
    rep: Arc<CompiledFilter>,
    buckets: HashMap<String, Vec<u64>>,
}

#[derive(Default)]
struct MatchIndex {
    trie: TopicTrie,
    /// `BTreeMap` (not `HashMap`): the match path iterates groups, and
    /// the chaos suite diffs delivery traces across two processes, so
    /// iteration order must not depend on per-process hasher seeds.
    literal_groups: BTreeMap<String, LiteralGroup>,
    /// Keys the index cannot reason about; always fully checked.
    broadcast: Vec<u64>,
}

/// Where a subscription lives in the match index.
enum Placement {
    Trie,
    Literal { signature: String, value: String },
    Broadcast,
}

fn placement(filters: &UnifiedFilters) -> Placement {
    if !filters.topics.is_empty() {
        return Placement::Trie;
    }
    if filters.producer_props.is_empty() && filters.content.len() == 1 {
        if let Some((sig, val)) = filters.content[0].literal_eq() {
            return Placement::Literal {
                signature: sig.to_string(),
                value: val.to_string(),
            };
        }
    }
    Placement::Broadcast
}

impl RegistryInner {
    fn link(&mut self, key: u64, sub: &BrokerSubscription) {
        match placement(&sub.filters) {
            Placement::Trie => {
                for expr in &sub.filters.topics {
                    self.index.trie.insert(expr, key);
                }
            }
            Placement::Literal { signature, value } => {
                let group = self
                    .index
                    .literal_groups
                    .entry(signature)
                    .or_insert_with(|| LiteralGroup {
                        rep: sub.filters.content[0].clone(),
                        buckets: HashMap::new(),
                    });
                group.buckets.entry(value).or_default().push(key);
            }
            Placement::Broadcast => self.index.broadcast.push(key),
        }
    }

    fn unlink(&mut self, key: u64, sub: &BrokerSubscription) {
        match placement(&sub.filters) {
            Placement::Trie => {
                for expr in &sub.filters.topics {
                    self.index.trie.remove(expr, key);
                }
            }
            Placement::Literal { signature, value } => {
                if let Some(group) = self.index.literal_groups.get_mut(&signature) {
                    if let Some(bucket) = group.buckets.get_mut(&value) {
                        bucket.retain(|&k| k != key);
                        if bucket.is_empty() {
                            group.buckets.remove(&value);
                        }
                    }
                    if group.buckets.is_empty() {
                        self.index.literal_groups.remove(&signature);
                    }
                }
            }
            Placement::Broadcast => self.index.broadcast.retain(|&k| k != key),
        }
    }

    fn remove_entry(&mut self, id: &str) -> Option<SubEntry> {
        let key = self.key_of.remove(id)?;
        let entry = self.by_key.remove(&key)?;
        let core = entry.core.clone();
        self.unlink(key, &core);
        Some(entry)
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Insert a subscription (id is minted here).
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &self,
        spec: SpecDialect,
        consumer: EndpointReference,
        end_to: Option<EndpointReference>,
        filters: UnifiedFilters,
        mode: BrokerDeliveryMode,
        use_raw: bool,
        expires_at_ms: Option<u64>,
    ) -> String {
        let mut inner = self.inner.lock();
        inner.next_id += 1;
        let key = inner.next_id;
        let id = format!("wsm-{key}");
        let core = Arc::new(BrokerSubscription {
            id: id.clone(),
            spec,
            consumer,
            end_to,
            filters,
            mode,
            use_raw,
        });
        inner.link(key, &core);
        inner.key_of.insert(id.clone(), key);
        inner.by_key.insert(
            key,
            SubEntry {
                core,
                paused: false,
                expires_at_ms,
                queue: VecDeque::new(),
                wrap_buffer: Vec::new(),
            },
        );
        id
    }

    fn with_entry<T>(&self, id: &str, f: impl FnOnce(&mut SubEntry) -> T) -> Option<T> {
        let mut inner = self.inner.lock();
        let key = *inner.key_of.get(id)?;
        inner.by_key.get_mut(&key).map(f)
    }

    /// The shared immutable core of one subscription.
    pub fn get(&self, id: &str) -> Option<Arc<BrokerSubscription>> {
        self.with_entry(id, |e| e.core.clone())
    }

    /// The mutable status of one subscription.
    pub fn status(&self, id: &str) -> Option<SubscriptionStatus> {
        self.with_entry(id, |e| SubscriptionStatus {
            paused: e.paused,
            expires_at_ms: e.expires_at_ms,
        })
    }

    /// Remove one subscription.
    pub fn remove(&self, id: &str) -> Option<Arc<BrokerSubscription>> {
        self.inner.lock().remove_entry(id).map(|e| e.core)
    }

    /// Update expiry. False when unknown.
    pub fn set_expiry(&self, id: &str, expires_at_ms: Option<u64>) -> bool {
        self.with_entry(id, |e| e.expires_at_ms = expires_at_ms)
            .is_some()
    }

    /// Pause / resume. False when unknown.
    pub fn set_paused(&self, id: &str, paused: bool) -> bool {
        self.with_entry(id, |e| e.paused = paused).is_some()
    }

    /// Remove expired subscriptions, returning them.
    pub fn sweep_expired(&self, now_ms: u64) -> Vec<Arc<BrokerSubscription>> {
        let mut inner = self.inner.lock();
        let mut ids: Vec<String> = inner
            .by_key
            .values()
            .filter(|e| e.expired(now_ms))
            .map(|e| e.core.id.clone())
            .collect();
        // Deterministic sweep order for the chaos suite's trace diff.
        ids.sort();
        ids.iter()
            .filter_map(|id| inner.remove_entry(id).map(|e| e.core))
            .collect()
    }

    /// Live, unpaused subscriptions admitting `event`, in id order.
    ///
    /// Candidates come from the match index (module docs): trie hits
    /// arrive with their topic check proven and only re-run content /
    /// producer-properties filters; literal-bucket hits are full
    /// proofs and run nothing; broadcast entries run the whole check.
    /// The index is sound — it only ever *skips* work the structures
    /// have already decided — so results are identical to scanning
    /// every subscription with [`UnifiedFilters::admit`].
    pub fn matching(
        &self,
        event: &InternalEvent,
        producer_properties: Option<&Element>,
        now_ms: u64,
    ) -> Vec<Arc<BrokerSubscription>> {
        let inner = self.inner.lock();
        // One shared document index per publication, reused by every
        // candidate filter evaluation and literal-group path.
        let payload = EvalDoc::new(event.payload_element());
        let props = producer_properties.map(EvalDoc::new);
        // The subscription `Arc` is cloned on the *first* table probe:
        // at large registrations the candidate keys land all over the
        // `by_key` table, and re-probing every hit after the sort was
        // the dominant cost of the match stage (each probe a fresh
        // cache/TLB miss). One probe per candidate, then sort the
        // (key, Arc) pairs by key.
        let mut hits: Vec<(u64, Arc<BrokerSubscription>)> = Vec::new();

        if let Some(topic) = &event.topic {
            for key in inner.index.trie.matches(topic) {
                if let Some(e) = inner.by_key.get(&key) {
                    if e.live(now_ms)
                        && e.core
                            .filters
                            .admit_docs(Some(topic), true, &payload, props.as_ref())
                    {
                        hits.push((key, e.core.clone()));
                    }
                }
            }
        }

        for group in inner.index.literal_groups.values() {
            let mut values = group.rep.eval_literal_path(&payload);
            values.sort_unstable();
            values.dedup();
            for value in values {
                if let Some(bucket) = group.buckets.get(&value) {
                    for &key in bucket {
                        if let Some(e) = inner.by_key.get(&key).filter(|e| e.live(now_ms)) {
                            hits.push((key, e.core.clone()));
                        }
                    }
                }
            }
        }

        for &key in &inner.index.broadcast {
            if let Some(e) = inner.by_key.get(&key) {
                if e.live(now_ms)
                    && e.core.filters.admit_docs(
                        event.topic.as_ref(),
                        false,
                        &payload,
                        props.as_ref(),
                    )
                {
                    hits.push((key, e.core.clone()));
                }
            }
        }

        // Numeric id order: stable across processes (no hasher seeds
        // involved) and equal to subscription age.
        hits.sort_unstable_by_key(|(key, _)| *key);
        hits.dedup_by_key(|(key, _)| *key);
        hits.into_iter().map(|(_, core)| core).collect()
    }

    /// Queue an event on a pull subscription.
    pub fn queue_event(
        &self,
        id: &str,
        payload: Arc<SharedElement>,
        seq: u64,
        queued_at_ms: u64,
    ) -> bool {
        self.with_entry(id, |e| {
            e.queue.push_back(QueuedEvent {
                payload,
                seq,
                queued_at_ms,
            })
        })
        .is_some()
    }

    /// Drain up to `max` queued events.
    pub fn drain_queue(&self, id: &str, max: usize) -> Vec<QueuedEvent> {
        self.with_entry(id, |e| {
            let n = max.min(e.queue.len());
            e.queue.drain(..n).collect()
        })
        .unwrap_or_default()
    }

    /// Buffer an event for wrapped delivery.
    pub fn buffer_wrapped(
        &self,
        id: &str,
        payload: Arc<SharedElement>,
        seq: u64,
        queued_at_ms: u64,
    ) -> bool {
        self.with_entry(id, |e| {
            e.wrap_buffer.push(QueuedEvent {
                payload,
                seq,
                queued_at_ms,
            })
        })
        .is_some()
    }

    /// Take all wrapped buffers.
    pub fn take_wrap_buffers(&self) -> Vec<(String, Vec<QueuedEvent>)> {
        self.inner
            .lock()
            .by_key
            .values_mut()
            .filter(|e| !e.wrap_buffer.is_empty())
            .map(|e| (e.core.id.clone(), std::mem::take(&mut e.wrap_buffer)))
            .collect()
    }

    /// Subscription count.
    pub fn len(&self) -> usize {
        self.inner.lock().by_key.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot all subscriptions.
    pub fn all(&self) -> Vec<Arc<BrokerSubscription>> {
        self.inner
            .lock()
            .by_key
            .values()
            .map(|e| e.core.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsm_eventing::WseVersion;

    fn epr() -> EndpointReference {
        EndpointReference::new("http://c")
    }

    fn spec() -> SpecDialect {
        SpecDialect::Wse(WseVersion::Aug2004)
    }

    fn xp(src: &str) -> Arc<CompiledFilter> {
        Arc::new(CompiledFilter::compile(src).unwrap())
    }

    #[test]
    fn unified_filters_combine_kinds() {
        let f = UnifiedFilters {
            topics: vec![TopicExpression::concrete("storms").unwrap()],
            content: vec![xp("/e[@sev > 3]")],
            producer_props: vec![],
        };
        let hot = InternalEvent::on_topic("storms", Element::local("e").with_attr("sev", "5"));
        let cold = InternalEvent::on_topic("storms", Element::local("e").with_attr("sev", "1"));
        let off_topic =
            InternalEvent::on_topic("traffic", Element::local("e").with_attr("sev", "5"));
        let topicless = InternalEvent::raw(Element::local("e").with_attr("sev", "5"));
        assert!(f.admit(&hot, None));
        assert!(!f.admit(&cold, None));
        assert!(!f.admit(&off_topic, None));
        assert!(!f.admit(&topicless, None), "topic filter needs a topic");
    }

    #[test]
    fn registry_lifecycle() {
        let r = Registry::new();
        let id = r.insert(
            spec(),
            epr(),
            None,
            UnifiedFilters::default(),
            BrokerDeliveryMode::Push,
            false,
            Some(100),
        );
        assert_eq!(r.len(), 1);
        assert!(r.get(&id).is_some());
        assert_eq!(
            r.status(&id),
            Some(SubscriptionStatus {
                paused: false,
                expires_at_ms: Some(100)
            })
        );
        assert!(r.set_expiry(&id, Some(500)));
        assert!(r.sweep_expired(200).is_empty());
        assert_eq!(r.sweep_expired(600).len(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn paused_subscriptions_excluded() {
        let r = Registry::new();
        let id = r.insert(
            spec(),
            epr(),
            None,
            UnifiedFilters::default(),
            BrokerDeliveryMode::Push,
            false,
            None,
        );
        let ev = InternalEvent::raw(Element::local("x"));
        assert_eq!(r.matching(&ev, None, 0).len(), 1);
        r.set_paused(&id, true);
        assert_eq!(r.matching(&ev, None, 0).len(), 0);
        r.set_paused(&id, false);
        assert_eq!(r.matching(&ev, None, 0).len(), 1);
    }

    fn topic_filters(expr: TopicExpression) -> UnifiedFilters {
        UnifiedFilters {
            topics: vec![expr],
            content: vec![],
            producer_props: vec![],
        }
    }

    fn insert_with(r: &Registry, filters: UnifiedFilters) -> String {
        r.insert(
            spec(),
            epr(),
            None,
            filters,
            BrokerDeliveryMode::Push,
            false,
            None,
        )
    }

    #[test]
    fn topic_index_routes_each_event_shape() {
        let r = Registry::new();
        let rooted = insert_with(
            &r,
            topic_filters(TopicExpression::concrete("storms/hail").unwrap()),
        );
        let union = insert_with(
            &r,
            topic_filters(TopicExpression::full("storms/* | traffic").unwrap()),
        );
        let wild = insert_with(&r, topic_filters(TopicExpression::full("//hail").unwrap()));
        let open = insert_with(&r, UnifiedFilters::default());

        let ids = |ev: &InternalEvent| -> Vec<String> {
            let mut v: Vec<String> = r
                .matching(ev, None, 0)
                .into_iter()
                .map(|s| s.id.clone())
                .collect();
            v.sort();
            v
        };

        let hail = InternalEvent::on_topic("storms/hail", Element::local("e"));
        let mut expect = vec![rooted.clone(), union.clone(), wild.clone(), open.clone()];
        expect.sort();
        assert_eq!(ids(&hail), expect);

        let traffic = InternalEvent::on_topic("traffic", Element::local("e"));
        let mut expect = vec![union.clone(), open.clone()];
        expect.sort();
        assert_eq!(ids(&traffic), expect);

        // A root no expression opens with reaches only wildcard +
        // unfiltered candidates.
        let deep_hail = InternalEvent::on_topic("alerts/hail", Element::local("e"));
        let mut expect = vec![wild.clone(), open.clone()];
        expect.sort();
        assert_eq!(ids(&deep_hail), expect);

        // Topicless events bypass every topic-filtered subscription.
        let topicless = InternalEvent::raw(Element::local("e"));
        assert_eq!(ids(&topicless), vec![open.clone()]);

        // Removal unlinks from every trie terminal it was linked into.
        r.remove(&union);
        let mut expect = vec![rooted, wild, open];
        expect.sort();
        assert_eq!(ids(&hail), expect);
    }

    #[test]
    fn literal_buckets_route_equality_filters() {
        let r = Registry::new();
        let mut on_source: Vec<String> = Vec::new();
        for i in 0..8 {
            on_source.push(insert_with(
                &r,
                UnifiedFilters {
                    topics: vec![],
                    content: vec![xp(&format!("/event/source = 'gridftp-{i}'"))],
                    producer_props: vec![],
                },
            ));
        }
        // Same signature, different literal; plus an unindexable filter.
        let complex = insert_with(
            &r,
            UnifiedFilters {
                topics: vec![],
                content: vec![xp("contains(/event/source, 'ftp-3')")],
                producer_props: vec![],
            },
        );

        let ev = InternalEvent::raw(
            Element::local("event")
                .with_child(Element::local("source").with_text("gridftp-3".to_string())),
        );
        let mut got: Vec<String> = r
            .matching(&ev, None, 0)
            .into_iter()
            .map(|s| s.id.clone())
            .collect();
        got.sort();
        let mut want = vec![on_source[3].clone(), complex.clone()];
        want.sort();
        assert_eq!(got, want);

        // Unlinking empties the bucket; the complex one still matches.
        r.remove(&on_source[3]);
        let got: Vec<String> = r
            .matching(&ev, None, 0)
            .into_iter()
            .map(|s| s.id.clone())
            .collect();
        assert_eq!(got, vec![complex]);
    }

    #[test]
    fn index_matches_linear_scan_semantics() {
        // The index must be invisible: for a mixed population and a
        // set of events, matching() equals a brute-force admit() scan.
        let r = Registry::new();
        let filters: Vec<UnifiedFilters> = vec![
            UnifiedFilters::default(),
            topic_filters(TopicExpression::simple("storms").unwrap()),
            topic_filters(TopicExpression::full("storms//*").unwrap()),
            UnifiedFilters {
                topics: vec![TopicExpression::concrete("storms/hail").unwrap()],
                content: vec![xp("/e/@sev > 3")],
                producer_props: vec![],
            },
            UnifiedFilters {
                topics: vec![],
                content: vec![xp("/e/kind = 'alert'")],
                producer_props: vec![],
            },
            UnifiedFilters {
                topics: vec![],
                content: vec![xp("count(/e/*) > 1")],
                producer_props: vec![],
            },
            UnifiedFilters {
                topics: vec![],
                content: vec![],
                producer_props: vec![xp("/props/site = 'anl'")],
            },
        ];
        let mut ids = Vec::new();
        for f in &filters {
            ids.push(insert_with(&r, f.clone()));
        }
        let props =
            Element::local("props").with_child(Element::local("site").with_text("anl".to_string()));
        let events = [
            InternalEvent::raw(Element::local("e").with_attr("sev", "5")),
            InternalEvent::on_topic("storms/hail", Element::local("e").with_attr("sev", "5")),
            InternalEvent::on_topic("storms/hail", Element::local("e").with_attr("sev", "1")),
            InternalEvent::raw(
                Element::local("e")
                    .with_child(Element::local("kind").with_text("alert".to_string())),
            ),
            InternalEvent::on_topic(
                "traffic",
                Element::local("e")
                    .with_child(Element::local("kind").with_text("alert".to_string()))
                    .with_child(Element::local("x")),
            ),
        ];
        for (ei, ev) in events.iter().enumerate() {
            for props_opt in [None, Some(&props)] {
                let got: Vec<String> = r
                    .matching(ev, props_opt, 0)
                    .into_iter()
                    .map(|s| s.id.clone())
                    .collect();
                let want: Vec<String> = ids
                    .iter()
                    .zip(&filters)
                    .filter(|(_, f)| f.admit(ev, props_opt))
                    .map(|(id, _)| id.clone())
                    .collect();
                assert_eq!(got, want, "event {ei}, props {}", props_opt.is_some());
            }
        }
    }

    #[test]
    fn sweep_unlinks_from_topic_index() {
        let r = Registry::new();
        let id = r.insert(
            spec(),
            epr(),
            None,
            topic_filters(TopicExpression::simple("storms").unwrap()),
            BrokerDeliveryMode::Push,
            false,
            Some(10),
        );
        let ev = InternalEvent::on_topic("storms", Element::local("e"));
        assert_eq!(r.matching(&ev, None, 0).len(), 1);
        let swept = r.sweep_expired(20);
        assert_eq!(swept.len(), 1);
        assert_eq!(swept[0].id, id);
        assert!(r.matching(&ev, None, 30).is_empty());
    }

    #[test]
    fn queues_and_buffers() {
        let r = Registry::new();
        let id = r.insert(
            spec(),
            epr(),
            None,
            UnifiedFilters::default(),
            BrokerDeliveryMode::Pull,
            false,
            None,
        );
        r.queue_event(&id, SharedElement::new(Element::local("a")), 1, 0);
        r.queue_event(&id, SharedElement::new(Element::local("b")), 2, 0);
        let head = r.drain_queue(&id, 1);
        assert_eq!(head.len(), 1);
        assert_eq!(head[0].seq, 1, "FIFO keeps causal coordinates");
        assert_eq!(r.drain_queue(&id, 10).len(), 1);
        r.buffer_wrapped(&id, SharedElement::new(Element::local("c")), 3, 0);
        let buffers = r.take_wrap_buffers();
        assert_eq!(buffers.len(), 1);
        assert_eq!(buffers[0].1.len(), 1);
    }
}
