//! The broker's unified subscription registry.
//!
//! Each subscription remembers which dialect created it ("the
//! specification type of a target event consumer is determined by the
//! subscription request message type", §VII) plus a *unified* compiled
//! filter set covering both specs' filter models: WS-Eventing's single
//! XPath filter compiles into `content`; WS-Notification's three filter
//! kinds compile into `topics` / `content` / `producer_props`.

use crate::detect::SpecDialect;
use crate::event::InternalEvent;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use wsm_addressing::EndpointReference;
use wsm_topics::TopicExpression;
use wsm_xml::Element;
use wsm_xpath::XPath;

/// Unified compiled filters.
#[derive(Debug, Clone, Default)]
pub struct UnifiedFilters {
    /// Topic expressions (WSN). Any match admits; an event *without* a
    /// topic fails a topic filter.
    pub topics: Vec<TopicExpression>,
    /// Content predicates (WSE default filter, WSN MessageContent).
    pub content: Vec<XPath>,
    /// Producer-properties predicates (WSN only).
    pub producer_props: Vec<XPath>,
}

impl UnifiedFilters {
    /// Does the event pass every supplied filter kind?
    pub fn admit(&self, event: &InternalEvent, producer_properties: Option<&Element>) -> bool {
        if !self.topics.is_empty() {
            match &event.topic {
                Some(t) => {
                    if !self.topics.iter().any(|e| e.matches(t)) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        if !self.content.is_empty() && !self.content.iter().any(|x| x.matches(&event.payload)) {
            return false;
        }
        if !self.producer_props.is_empty() {
            match producer_properties {
                Some(doc) => {
                    if !self.producer_props.iter().any(|x| x.matches(doc)) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }
}

/// How the consumer wants messages delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrokerDeliveryMode {
    /// Push one message per event.
    Push,
    /// Queue at the broker; the consumer pulls (WSE pull mode).
    Pull,
    /// Buffer and push batches (WSE wrapped mode).
    Wrapped,
}

/// One live broker subscription.
#[derive(Debug, Clone)]
pub struct BrokerSubscription {
    /// Identifier minted by the registry.
    pub id: String,
    /// The dialect the subscription was created in — and therefore the
    /// dialect its notifications are rendered in.
    pub spec: SpecDialect,
    /// Where notifications go.
    pub consumer: EndpointReference,
    /// Where WSE `SubscriptionEnd` notices go (WSE only).
    pub end_to: Option<EndpointReference>,
    /// Unified filters.
    pub filters: UnifiedFilters,
    /// Delivery mode.
    pub mode: BrokerDeliveryMode,
    /// WSN raw-payload delivery (`UseRaw`).
    pub use_raw: bool,
    /// Paused (WSN pause/resume).
    pub paused: bool,
    /// Absolute expiry on the virtual clock.
    pub expires_at_ms: Option<u64>,
    /// Queued events (pull mode).
    pub queue: VecDeque<Element>,
    /// Buffered events (wrapped mode).
    pub wrap_buffer: Vec<Element>,
}

impl BrokerSubscription {
    /// Is the subscription expired at `now`?
    pub fn expired(&self, now_ms: u64) -> bool {
        self.expires_at_ms.is_some_and(|t| t <= now_ms)
    }
}

/// Thread-safe registry.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

#[derive(Default)]
struct RegistryInner {
    subs: HashMap<String, BrokerSubscription>,
    next_id: u64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Insert a subscription (id is minted here).
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &self,
        spec: SpecDialect,
        consumer: EndpointReference,
        end_to: Option<EndpointReference>,
        filters: UnifiedFilters,
        mode: BrokerDeliveryMode,
        use_raw: bool,
        expires_at_ms: Option<u64>,
    ) -> String {
        let mut inner = self.inner.lock();
        inner.next_id += 1;
        let id = format!("wsm-{}", inner.next_id);
        inner.subs.insert(
            id.clone(),
            BrokerSubscription {
                id: id.clone(),
                spec,
                consumer,
                end_to,
                filters,
                mode,
                use_raw,
                paused: false,
                expires_at_ms,
                queue: VecDeque::new(),
                wrap_buffer: Vec::new(),
            },
        );
        id
    }

    /// Snapshot one subscription.
    pub fn get(&self, id: &str) -> Option<BrokerSubscription> {
        self.inner.lock().subs.get(id).cloned()
    }

    /// Remove one subscription.
    pub fn remove(&self, id: &str) -> Option<BrokerSubscription> {
        self.inner.lock().subs.remove(id)
    }

    /// Update expiry. False when unknown.
    pub fn set_expiry(&self, id: &str, expires_at_ms: Option<u64>) -> bool {
        match self.inner.lock().subs.get_mut(id) {
            Some(s) => {
                s.expires_at_ms = expires_at_ms;
                true
            }
            None => false,
        }
    }

    /// Pause / resume. False when unknown.
    pub fn set_paused(&self, id: &str, paused: bool) -> bool {
        match self.inner.lock().subs.get_mut(id) {
            Some(s) => {
                s.paused = paused;
                true
            }
            None => false,
        }
    }

    /// Remove expired subscriptions, returning them.
    pub fn sweep_expired(&self, now_ms: u64) -> Vec<BrokerSubscription> {
        let mut inner = self.inner.lock();
        let ids: Vec<String> =
            inner.subs.values().filter(|s| s.expired(now_ms)).map(|s| s.id.clone()).collect();
        ids.iter().filter_map(|id| inner.subs.remove(id)).collect()
    }

    /// Live, unpaused subscriptions admitting `event`.
    pub fn matching(
        &self,
        event: &InternalEvent,
        producer_properties: Option<&Element>,
        now_ms: u64,
    ) -> Vec<BrokerSubscription> {
        self.inner
            .lock()
            .subs
            .values()
            .filter(|s| !s.paused && !s.expired(now_ms) && s.filters.admit(event, producer_properties))
            .cloned()
            .collect()
    }

    /// Queue an event on a pull subscription.
    pub fn queue_event(&self, id: &str, payload: Element) -> bool {
        match self.inner.lock().subs.get_mut(id) {
            Some(s) => {
                s.queue.push_back(payload);
                true
            }
            None => false,
        }
    }

    /// Drain up to `max` queued events.
    pub fn drain_queue(&self, id: &str, max: usize) -> Vec<Element> {
        match self.inner.lock().subs.get_mut(id) {
            Some(s) => {
                let n = max.min(s.queue.len());
                s.queue.drain(..n).collect()
            }
            None => Vec::new(),
        }
    }

    /// Buffer an event for wrapped delivery.
    pub fn buffer_wrapped(&self, id: &str, payload: Element) -> bool {
        match self.inner.lock().subs.get_mut(id) {
            Some(s) => {
                s.wrap_buffer.push(payload);
                true
            }
            None => false,
        }
    }

    /// Take all wrapped buffers.
    pub fn take_wrap_buffers(&self) -> Vec<(String, Vec<Element>)> {
        self.inner
            .lock()
            .subs
            .values_mut()
            .filter(|s| !s.wrap_buffer.is_empty())
            .map(|s| (s.id.clone(), std::mem::take(&mut s.wrap_buffer)))
            .collect()
    }

    /// Subscription count.
    pub fn len(&self) -> usize {
        self.inner.lock().subs.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot all subscriptions.
    pub fn all(&self) -> Vec<BrokerSubscription> {
        self.inner.lock().subs.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsm_eventing::WseVersion;

    fn epr() -> EndpointReference {
        EndpointReference::new("http://c")
    }

    fn spec() -> SpecDialect {
        SpecDialect::Wse(WseVersion::Aug2004)
    }

    #[test]
    fn unified_filters_combine_kinds() {
        let f = UnifiedFilters {
            topics: vec![TopicExpression::concrete("storms").unwrap()],
            content: vec![XPath::compile("/e[@sev > 3]").unwrap()],
            producer_props: vec![],
        };
        let hot = InternalEvent::on_topic("storms", Element::local("e").with_attr("sev", "5"));
        let cold = InternalEvent::on_topic("storms", Element::local("e").with_attr("sev", "1"));
        let off_topic = InternalEvent::on_topic("traffic", Element::local("e").with_attr("sev", "5"));
        let topicless = InternalEvent::raw(Element::local("e").with_attr("sev", "5"));
        assert!(f.admit(&hot, None));
        assert!(!f.admit(&cold, None));
        assert!(!f.admit(&off_topic, None));
        assert!(!f.admit(&topicless, None), "topic filter needs a topic");
    }

    #[test]
    fn registry_lifecycle() {
        let r = Registry::new();
        let id = r.insert(
            spec(),
            epr(),
            None,
            UnifiedFilters::default(),
            BrokerDeliveryMode::Push,
            false,
            Some(100),
        );
        assert_eq!(r.len(), 1);
        assert!(r.get(&id).is_some());
        assert!(r.set_expiry(&id, Some(500)));
        assert!(r.sweep_expired(200).is_empty());
        assert_eq!(r.sweep_expired(600).len(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn paused_subscriptions_excluded() {
        let r = Registry::new();
        let id = r.insert(
            spec(),
            epr(),
            None,
            UnifiedFilters::default(),
            BrokerDeliveryMode::Push,
            false,
            None,
        );
        let ev = InternalEvent::raw(Element::local("x"));
        assert_eq!(r.matching(&ev, None, 0).len(), 1);
        r.set_paused(&id, true);
        assert_eq!(r.matching(&ev, None, 0).len(), 0);
    }

    #[test]
    fn queues_and_buffers() {
        let r = Registry::new();
        let id = r.insert(
            spec(),
            epr(),
            None,
            UnifiedFilters::default(),
            BrokerDeliveryMode::Pull,
            false,
            None,
        );
        r.queue_event(&id, Element::local("a"));
        r.queue_event(&id, Element::local("b"));
        assert_eq!(r.drain_queue(&id, 1).len(), 1);
        assert_eq!(r.drain_queue(&id, 10).len(), 1);
        r.buffer_wrapped(&id, Element::local("c"));
        let buffers = r.take_wrap_buffers();
        assert_eq!(buffers.len(), 1);
        assert_eq!(buffers[0].1.len(), 1);
    }
}
