//! Broker observability: the instrumentation facade the pipeline
//! records into.
//!
//! With the default `obs` feature this wraps a `wsm-obs`
//! [`MetricsRegistry`](wsm_obs::MetricsRegistry) (counters + per-stage
//! latency histograms) and a bounded [`SpanRing`](wsm_obs::SpanRing)
//! of pipeline-stage spans, timestamped on the network's virtual clock.
//! Without the feature every method is an empty `#[inline]` no-op and
//! the timer type is zero-sized, so `--no-default-features` builds
//! compile the instrumentation out of the hot path entirely.
//!
//! A runtime kill-switch ([`BrokerObs::set_enabled`]) additionally
//! lets an `obs`-enabled broker stop recording — which is how the
//! bench harness measures the overhead of live instrumentation
//! against an identical binary with recording skipped.

#[cfg(feature = "obs")]
mod imp {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;
    use wsm_obs::{Counter, Gauge, Histogram, HistogramStats, MetricsRegistry, SpanRing};

    pub use wsm_obs::{SpanRecord, Stage};

    /// Wall-clock handle for one open stage (`None` when recording is
    /// disabled, so a disabled broker skips even the `Instant` read).
    pub type StageTimer = Option<Instant>;

    /// How many spans the trace ring retains before overwriting the
    /// oldest (documented in DESIGN.md §8).
    pub const SPAN_RING_CAPACITY: usize = 4096;

    /// One broker's observability state.
    pub struct BrokerObs {
        registry: MetricsRegistry,
        ring: SpanRing,
        enabled: AtomicBool,
        seq: AtomicU64,
        published: Arc<Counter>,
        delivered: Arc<Counter>,
        failed: Arc<Counter>,
        mediated: Arc<Counter>,
        subscriptions: Arc<Gauge>,
        /// Indexed by `Stage as usize` (pipeline order).
        stages: [Arc<Histogram>; 5],
        delivery_latency: Arc<Histogram>,
        dead_letters: Arc<Counter>,
        redelivery_depth: Arc<Gauge>,
        breakers_open: Arc<Gauge>,
        backoff_delay: Arc<Histogram>,
    }

    impl Default for BrokerObs {
        fn default() -> Self {
            Self::new()
        }
    }

    impl BrokerObs {
        /// Fresh metrics and an empty span ring; recording enabled.
        pub fn new() -> Self {
            let registry = MetricsRegistry::new();
            let stages =
                Stage::ALL.map(|s| registry.histogram(&format!("wsm_stage_{}_ns", s.name())));
            BrokerObs {
                published: registry.counter("wsm_published_total"),
                delivered: registry.counter("wsm_delivered_total"),
                failed: registry.counter("wsm_failed_total"),
                mediated: registry.counter("wsm_mediated_total"),
                subscriptions: registry.gauge("wsm_subscriptions"),
                delivery_latency: registry.histogram("wsm_delivery_latency_ns"),
                dead_letters: registry.counter("wsm_dead_letters_total"),
                redelivery_depth: registry.gauge("wsm_redelivery_depth"),
                breakers_open: registry.gauge("wsm_breakers_open"),
                backoff_delay: registry.histogram("wsm_backoff_delay_ms"),
                stages,
                ring: SpanRing::new(SPAN_RING_CAPACITY),
                enabled: AtomicBool::new(true),
                seq: AtomicU64::new(0),
                registry,
            }
        }

        /// Is recording on?
        #[inline]
        pub fn enabled(&self) -> bool {
            self.enabled.load(Ordering::Relaxed)
        }

        /// Runtime kill-switch: `false` makes every record call an
        /// early-returning branch.
        pub fn set_enabled(&self, on: bool) {
            self.enabled.store(on, Ordering::Relaxed);
        }

        /// Mint the next publication sequence number (trace id).
        #[inline]
        pub fn next_seq(&self) -> u64 {
            self.seq.fetch_add(1, Ordering::Relaxed) + 1
        }

        /// Open a stage timer (`None` while disabled).
        #[inline]
        pub fn start(&self) -> StageTimer {
            if self.enabled() {
                Some(Instant::now())
            } else {
                None
            }
        }

        /// Close a stage: record its duration into the stage histogram
        /// and append a span (virtual-clock position `at_ms`, `items`
        /// the stage's cardinality). Spans from fan-out workers carry
        /// no worker tag here — worker attribution lives in the
        /// transport trace, which records the delivering thread name.
        pub fn stage(&self, stage: Stage, seq: u64, timer: StageTimer, at_ms: u64, items: u64) {
            let Some(t) = timer else { return };
            let dur_ns = t.elapsed().as_nanos() as u64;
            self.stages[stage as usize].record(dur_ns);
            self.ring
                .push(SpanRecord::new(seq, stage, at_ms, dur_ns, items));
        }

        /// Count one ingested publication.
        #[inline]
        pub fn record_publication(&self) {
            if self.enabled() {
                self.published.inc();
            }
        }

        /// Merge one fan-out's outcome totals.
        pub fn record_outcomes(&self, delivered: u64, failed: u64, mediated: u64) {
            if !self.enabled() {
                return;
            }
            self.delivered.add(delivered);
            self.failed.add(failed);
            self.mediated.add(mediated);
        }

        /// Record per-subscriber delivery latencies from one fan-out.
        pub fn record_latencies(&self, latencies_ns: &[u64]) {
            if !self.enabled() {
                return;
            }
            for &ns in latencies_ns {
                self.delivery_latency.record(ns);
            }
        }

        /// Update the live-subscription gauge (called at scrape time).
        pub fn set_subscriptions(&self, n: i64) {
            self.subscriptions.set(n);
        }

        /// Count one message moved to the dead-letter store.
        #[inline]
        pub fn record_dead_letter(&self) {
            if self.enabled() {
                self.dead_letters.inc();
            }
        }

        /// Record one scheduled backoff delay (virtual ms).
        #[inline]
        pub fn record_backoff(&self, delay_ms: u64) {
            if self.enabled() {
                self.backoff_delay.record(delay_ms);
            }
        }

        /// Update the redelivery-queue depth gauge.
        pub fn set_redelivery_depth(&self, n: i64) {
            self.redelivery_depth.set(n);
        }

        /// Update the open-circuit-breaker gauge.
        pub fn set_breakers_open(&self, n: i64) {
            self.breakers_open.set(n);
        }

        /// The metrics registry.
        pub fn registry(&self) -> &MetricsRegistry {
            &self.registry
        }

        /// Prometheus text exposition of the broker metrics.
        pub fn prometheus(&self) -> String {
            wsm_obs::export::prometheus(&self.registry)
        }

        /// Snapshot of the buffered spans, oldest first.
        pub fn spans(&self) -> Vec<SpanRecord> {
            self.ring.snapshot()
        }

        /// Take the buffered spans, leaving the ring empty.
        pub fn drain_spans(&self) -> Vec<SpanRecord> {
            self.ring.drain()
        }

        /// Aggregate per-stage and per-delivery statistics.
        pub fn snapshot(&self) -> ObsSnapshot {
            ObsSnapshot {
                stages: Stage::ALL
                    .iter()
                    .map(|s| (s.name(), self.stages[*s as usize].stats()))
                    .collect(),
                delivery_latency: self.delivery_latency.stats(),
                published: self.published.get(),
                delivered: self.delivered.get(),
                failed: self.failed.get(),
                spans_buffered: self.ring.len(),
                spans_evicted: self.ring.dropped(),
            }
        }
    }

    /// Point-in-time aggregate of a broker's pipeline metrics, in the
    /// shape the bench emitters serialize.
    #[derive(Debug, Clone)]
    pub struct ObsSnapshot {
        /// `(stage name, duration stats in ns)` in pipeline order
        /// (publish, detect, match, render, deliver).
        pub stages: Vec<(&'static str, HistogramStats)>,
        /// Per-subscriber send latency (ns).
        pub delivery_latency: HistogramStats,
        /// Publications ingested.
        pub published: u64,
        /// Successful deliveries.
        pub delivered: u64,
        /// Failed deliveries.
        pub failed: u64,
        /// Spans currently buffered in the ring.
        pub spans_buffered: usize,
        /// Spans evicted to stay within the ring bound.
        pub spans_evicted: u64,
    }

    impl ObsSnapshot {
        /// Stats for one stage by name (`"match"`, `"render"`, ...).
        pub fn stage(&self, name: &str) -> Option<HistogramStats> {
            self.stages
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| *s)
        }
    }
}

#[cfg(not(feature = "obs"))]
mod imp {
    //! No-op shims: same call surface as the instrumented facade, all
    //! methods empty and inlined away.
    #![allow(dead_code)]

    /// Zero-sized stage timer.
    pub type StageTimer = ();

    /// Pipeline stages (names only; nothing records them).
    #[derive(Debug, Clone, Copy)]
    pub enum Stage {
        /// Ingesting a publication.
        Publish,
        /// Dialect detection.
        Detect,
        /// Subscription matching.
        Match,
        /// Envelope rendering.
        Render,
        /// Push fan-out.
        Deliver,
    }

    /// No-op observability state.
    #[derive(Debug, Default)]
    pub struct BrokerObs;

    impl BrokerObs {
        /// A no-op facade.
        pub fn new() -> Self {
            BrokerObs
        }

        /// Always `false` (nothing records).
        #[inline(always)]
        pub fn enabled(&self) -> bool {
            false
        }

        /// No-op.
        #[inline(always)]
        pub fn set_enabled(&self, _on: bool) {}

        /// Always 0 — sequence numbers only matter to spans.
        #[inline(always)]
        pub fn next_seq(&self) -> u64 {
            0
        }

        /// No-op.
        #[inline(always)]
        pub fn start(&self) -> StageTimer {}

        /// No-op.
        #[inline(always)]
        pub fn stage(&self, _s: Stage, _seq: u64, _t: StageTimer, _at_ms: u64, _items: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn record_publication(&self) {}

        /// No-op.
        #[inline(always)]
        pub fn record_outcomes(&self, _delivered: u64, _failed: u64, _mediated: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn set_subscriptions(&self, _n: i64) {}

        /// No-op.
        #[inline(always)]
        pub fn record_dead_letter(&self) {}

        /// No-op.
        #[inline(always)]
        pub fn record_backoff(&self, _delay_ms: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn set_redelivery_depth(&self, _n: i64) {}

        /// No-op.
        #[inline(always)]
        pub fn set_breakers_open(&self, _n: i64) {}
    }
}

pub use imp::*;
