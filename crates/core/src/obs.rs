//! Broker observability: the instrumentation facade the pipeline
//! records into.
//!
//! With the default `obs` feature this wraps a `wsm-obs`
//! [`MetricsRegistry`](wsm_obs::MetricsRegistry) (counters + per-stage
//! latency histograms) and a bounded [`SpanRing`](wsm_obs::SpanRing)
//! of pipeline-stage spans, timestamped on the network's virtual clock.
//! Without the feature every method is an empty `#[inline]` no-op and
//! the timer type is zero-sized, so `--no-default-features` builds
//! compile the instrumentation out of the hot path entirely.
//!
//! Beyond the five pipeline stages, the facade records the *causal*
//! side of delivery: per-subscriber attempt spans (retry, dead-letter)
//! and exactly one terminal resolve span per (event, subscriber) pair,
//! which feeds the end-to-end latency histogram (virtual ms,
//! publish → final resolution) and the [`SloEngine`](wsm_obs::SloEngine).
//!
//! A runtime kill-switch ([`BrokerObs::set_enabled`]) additionally
//! lets an `obs`-enabled broker stop recording — which is how the
//! bench harness measures the overhead of live instrumentation
//! against an identical binary with recording skipped.

#[cfg(feature = "obs")]
mod imp {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;
    use wsm_obs::{
        Counter, Gauge, Histogram, HistogramStats, MetricsRegistry, SloEngine, SpanRing,
        TraceContext,
    };

    pub use wsm_obs::{
        reconstruct, story_for, DeliveryStory, Outcome, SloReport, SloSpec, SpanRecord, Stage,
    };

    /// Wall-clock handle for one open stage (`None` when recording is
    /// disabled, so a disabled broker skips even the `Instant` read).
    pub type StageTimer = Option<Instant>;

    /// How many spans the trace ring retains before overwriting the
    /// oldest (documented in DESIGN.md §8).
    pub const SPAN_RING_CAPACITY: usize = 4096;

    /// One broker's observability state.
    pub struct BrokerObs {
        registry: MetricsRegistry,
        ring: SpanRing,
        enabled: AtomicBool,
        seq: AtomicU64,
        published: Arc<Counter>,
        delivered: Arc<Counter>,
        failed: Arc<Counter>,
        mediated: Arc<Counter>,
        subscriptions: Arc<Gauge>,
        /// Indexed by `Stage as usize` (pipeline order, then the
        /// per-subscriber attempt stages and the engine handoff stage).
        stages: [Arc<Histogram>; 9],
        delivery_latency: Arc<Histogram>,
        dead_letters: Arc<Counter>,
        redelivery_depth: Arc<Gauge>,
        breakers_open: Arc<Gauge>,
        backoff_delay: Arc<Histogram>,
        spans_dropped: Arc<Gauge>,
        e2e_latency: Arc<Histogram>,
        outcome_delivered: Arc<Counter>,
        outcome_dead_lettered: Arc<Counter>,
        outcome_expired: Arc<Counter>,
        slo: SloEngine,
    }

    impl Default for BrokerObs {
        fn default() -> Self {
            Self::new()
        }
    }

    impl BrokerObs {
        /// Fresh metrics and an empty span ring; recording enabled.
        pub fn new() -> Self {
            let registry = MetricsRegistry::new();
            let stages = Stage::ALL.map(|s| {
                let name = format!("wsm_stage_{}_ns", s.name());
                registry.describe(&name, "Duration of this pipeline stage, wall ns.");
                registry.histogram(&name)
            });
            registry.describe("wsm_published_total", "Publications ingested.");
            registry.describe("wsm_delivered_total", "Successful push deliveries.");
            registry.describe("wsm_failed_total", "Failed push deliveries.");
            registry.describe(
                "wsm_spans_dropped",
                "Trace spans evicted from the bounded ring (silent span loss).",
            );
            registry.describe(
                "wsm_e2e_latency_ms",
                "Publish to final resolution per (event, subscriber), virtual ms.",
            );
            registry.describe(
                "wsm_outcome_delivered_total",
                "Deliveries that terminally resolved as delivered.",
            );
            registry.describe(
                "wsm_outcome_dead_lettered_total",
                "Deliveries that terminally resolved into the dead-letter store.",
            );
            registry.describe(
                "wsm_outcome_expired_total",
                "Deliveries abandoned before reaching the consumer.",
            );
            registry.describe(
                "wsm_mediated_total",
                "Publications that crossed specification families.",
            );
            registry.describe("wsm_subscriptions", "Live subscriptions.");
            registry.describe(
                "wsm_delivery_latency_ns",
                "Per-subscriber send latency, wall ns.",
            );
            registry.describe(
                "wsm_dead_letters_total",
                "Messages moved to the dead-letter store.",
            );
            registry.describe(
                "wsm_redelivery_depth",
                "Messages waiting in the redelivery queue.",
            );
            registry.describe("wsm_breakers_open", "Circuit breakers currently open.");
            registry.describe(
                "wsm_backoff_delay_ms",
                "Scheduled redelivery backoff delays, virtual ms.",
            );
            BrokerObs {
                published: registry.counter("wsm_published_total"),
                delivered: registry.counter("wsm_delivered_total"),
                failed: registry.counter("wsm_failed_total"),
                mediated: registry.counter("wsm_mediated_total"),
                subscriptions: registry.gauge("wsm_subscriptions"),
                delivery_latency: registry.histogram("wsm_delivery_latency_ns"),
                dead_letters: registry.counter("wsm_dead_letters_total"),
                redelivery_depth: registry.gauge("wsm_redelivery_depth"),
                breakers_open: registry.gauge("wsm_breakers_open"),
                backoff_delay: registry.histogram("wsm_backoff_delay_ms"),
                spans_dropped: registry.gauge("wsm_spans_dropped"),
                e2e_latency: registry
                    .histogram_with("wsm_e2e_latency_ms", wsm_obs::metrics::ms_bounds),
                outcome_delivered: registry.counter("wsm_outcome_delivered_total"),
                outcome_dead_lettered: registry.counter("wsm_outcome_dead_lettered_total"),
                outcome_expired: registry.counter("wsm_outcome_expired_total"),
                slo: SloEngine::new(),
                stages,
                ring: SpanRing::new(SPAN_RING_CAPACITY),
                enabled: AtomicBool::new(true),
                seq: AtomicU64::new(0),
                registry,
            }
        }

        /// Is recording on?
        #[inline]
        pub fn enabled(&self) -> bool {
            self.enabled.load(Ordering::Relaxed)
        }

        /// Runtime kill-switch: `false` makes every record call an
        /// early-returning branch.
        pub fn set_enabled(&self, on: bool) {
            self.enabled.store(on, Ordering::Relaxed);
        }

        /// Mint the next publication sequence number (trace id).
        #[inline]
        pub fn next_seq(&self) -> u64 {
            self.seq.fetch_add(1, Ordering::Relaxed) + 1
        }

        /// Open a stage timer (`None` while disabled).
        #[inline]
        pub fn start(&self) -> StageTimer {
            if self.enabled() {
                Some(Instant::now())
            } else {
                None
            }
        }

        /// Close a stage: record its duration into the stage histogram
        /// and append a span (virtual-clock position `at_ms`, `items`
        /// the stage's cardinality). Spans from fan-out workers carry
        /// no worker tag here — worker attribution lives in the
        /// transport trace, which records the delivering thread name.
        pub fn stage(&self, stage: Stage, seq: u64, timer: StageTimer, at_ms: u64, items: u64) {
            let Some(t) = timer else { return };
            let dur_ns = t.elapsed().as_nanos() as u64;
            self.stages[stage as usize].record(dur_ns);
            self.ring
                .push(SpanRecord::new(seq, stage, at_ms, dur_ns, items));
        }

        /// Close a stage whose duration was accumulated externally
        /// (e.g. render time summed across the staged engine's lazy
        /// per-subscriber renders, or the publisher's handoff wait):
        /// same histogram + span as [`BrokerObs::stage`], but the
        /// caller supplies `dur_ns` directly.
        pub fn stage_dur(&self, stage: Stage, seq: u64, dur_ns: u64, at_ms: u64, items: u64) {
            if !self.enabled() {
                return;
            }
            self.stages[stage as usize].record(dur_ns);
            self.ring
                .push(SpanRecord::new(seq, stage, at_ms, dur_ns, items));
        }

        /// Record one redelivery attempt for one subscriber: a
        /// [`Stage::Retry`] span carrying the attempt's causal
        /// coordinates, with `items` = the attempt ordinal.
        pub fn retry(&self, seq: u64, subscriber: &str, attempt: u32, at_ms: u64, dur_ns: u64) {
            if !self.enabled() {
                return;
            }
            self.stages[Stage::Retry as usize].record(dur_ns);
            let ctx = TraceContext::new(seq, subscriber, attempt);
            self.ring.push(SpanRecord::for_attempt(
                &ctx,
                Stage::Retry,
                at_ms,
                dur_ns,
                attempt as u64,
            ));
        }

        /// Record the move of one (event, subscriber) delivery into the
        /// dead-letter store: a [`Stage::DeadLetter`] span (`items` =
        /// attempts spent) plus the dead-letter counter.
        pub fn dead_letter(&self, seq: u64, subscriber: &str, attempt: u32, at_ms: u64) {
            if !self.enabled() {
                return;
            }
            self.dead_letters.inc();
            let ctx = TraceContext::new(seq, subscriber, attempt);
            self.ring.push(SpanRecord::for_attempt(
                &ctx,
                Stage::DeadLetter,
                at_ms,
                0,
                attempt as u64,
            ));
        }

        /// Record the terminal resolution of one (event, subscriber)
        /// delivery: a [`Stage::Resolve`] span whose `items` is the
        /// end-to-end latency (publish → now, virtual ms), the
        /// end-to-end histogram, the per-outcome counters, and the SLO
        /// engine.
        pub fn resolve(
            &self,
            seq: u64,
            subscriber: &str,
            attempt: u32,
            published_at_ms: u64,
            at_ms: u64,
            outcome: Outcome,
        ) {
            if !self.enabled() {
                return;
            }
            let e2e_ms = at_ms.saturating_sub(published_at_ms);
            self.e2e_latency.record(e2e_ms);
            match outcome {
                Outcome::Delivered => self.outcome_delivered.inc(),
                Outcome::DeadLettered => self.outcome_dead_lettered.inc(),
                Outcome::Expired => self.outcome_expired.inc(),
            }
            self.slo
                .observe(at_ms, e2e_ms, outcome == Outcome::Delivered);
            let ctx = TraceContext::new(seq, subscriber, attempt);
            self.ring.push(
                SpanRecord::for_attempt(&ctx, Stage::Resolve, at_ms, 0, e2e_ms)
                    .with_outcome(outcome),
            );
        }

        /// Install latency objectives on the broker's SLO engine,
        /// replacing any previous set.
        pub fn set_slos(&self, specs: Vec<SloSpec>) {
            self.slo.set_objectives(specs);
        }

        /// SLO reports as of `now_ms` (virtual clock).
        pub fn slo_reports(&self, now_ms: u64) -> Vec<SloReport> {
            self.slo.reports(now_ms)
        }

        /// Count one ingested publication.
        #[inline]
        pub fn record_publication(&self) {
            if self.enabled() {
                self.published.inc();
            }
        }

        /// Merge one fan-out's outcome totals.
        pub fn record_outcomes(&self, delivered: u64, failed: u64, mediated: u64) {
            if !self.enabled() {
                return;
            }
            self.delivered.add(delivered);
            self.failed.add(failed);
            self.mediated.add(mediated);
        }

        /// Record per-subscriber delivery latencies from one fan-out.
        pub fn record_latencies(&self, latencies_ns: &[u64]) {
            if !self.enabled() {
                return;
            }
            for &ns in latencies_ns {
                self.delivery_latency.record(ns);
            }
        }

        /// Update the live-subscription gauge (called at scrape time).
        pub fn set_subscriptions(&self, n: i64) {
            self.subscriptions.set(n);
        }

        /// Count one message moved to the dead-letter store (counter
        /// only; [`BrokerObs::dead_letter`] also records the span).
        #[inline]
        pub fn record_dead_letter(&self) {
            if self.enabled() {
                self.dead_letters.inc();
            }
        }

        /// Record one scheduled backoff delay (virtual ms).
        #[inline]
        pub fn record_backoff(&self, delay_ms: u64) {
            if self.enabled() {
                self.backoff_delay.record(delay_ms);
            }
        }

        /// Update the redelivery-queue depth gauge.
        pub fn set_redelivery_depth(&self, n: i64) {
            self.redelivery_depth.set(n);
        }

        /// Update the open-circuit-breaker gauge.
        pub fn set_breakers_open(&self, n: i64) {
            self.breakers_open.set(n);
        }

        /// The metrics registry.
        pub fn registry(&self) -> &MetricsRegistry {
            &self.registry
        }

        /// Prometheus text exposition of the broker metrics (refreshes
        /// the span-loss gauge first, so silent ring eviction is
        /// visible to every scrape).
        pub fn prometheus(&self) -> String {
            self.spans_dropped.set(self.ring.dropped() as i64);
            wsm_obs::export::prometheus(&self.registry)
        }

        /// Prometheus text exposition of the SLO reports as of
        /// `now_ms`; empty when no objectives are installed.
        pub fn slo_prometheus(&self, now_ms: u64) -> String {
            wsm_obs::export::slo_prometheus(&self.slo.reports(now_ms))
        }

        /// The buffered spans plus the span-loss count, as JSONL (the
        /// trailing gauge line distinguishes a complete trace from a
        /// truncated one).
        pub fn spans_jsonl(&self) -> String {
            wsm_obs::export::ring_jsonl(&self.ring)
        }

        /// Snapshot of the buffered spans, oldest first.
        pub fn spans(&self) -> Vec<SpanRecord> {
            self.ring.snapshot()
        }

        /// Take the buffered spans, leaving the ring empty.
        pub fn drain_spans(&self) -> Vec<SpanRecord> {
            self.ring.drain()
        }

        /// Aggregate per-stage and per-delivery statistics.
        pub fn snapshot(&self) -> ObsSnapshot {
            self.spans_dropped.set(self.ring.dropped() as i64);
            ObsSnapshot {
                stages: Stage::ALL
                    .iter()
                    .map(|s| (s.name(), self.stages[*s as usize].stats()))
                    .collect(),
                delivery_latency: self.delivery_latency.stats(),
                e2e_latency_ms: self.e2e_latency.stats(),
                published: self.published.get(),
                delivered: self.delivered.get(),
                failed: self.failed.get(),
                outcome_delivered: self.outcome_delivered.get(),
                outcome_dead_lettered: self.outcome_dead_lettered.get(),
                outcome_expired: self.outcome_expired.get(),
                spans_buffered: self.ring.len(),
                spans_evicted: self.ring.dropped(),
            }
        }
    }

    /// Point-in-time aggregate of a broker's pipeline metrics, in the
    /// shape the bench emitters serialize.
    #[derive(Debug, Clone)]
    pub struct ObsSnapshot {
        /// `(stage name, duration stats in ns)` in [`Stage::ALL`] order
        /// (the five pipeline stages, then retry/dead_letter/resolve).
        pub stages: Vec<(&'static str, HistogramStats)>,
        /// Per-subscriber send latency (ns).
        pub delivery_latency: HistogramStats,
        /// End-to-end latency per (event, subscriber): publish → final
        /// resolution, in virtual ms.
        pub e2e_latency_ms: HistogramStats,
        /// Publications ingested.
        pub published: u64,
        /// Successful deliveries.
        pub delivered: u64,
        /// Failed deliveries.
        pub failed: u64,
        /// Deliveries terminally resolved as delivered.
        pub outcome_delivered: u64,
        /// Deliveries terminally resolved as dead-lettered.
        pub outcome_dead_lettered: u64,
        /// Deliveries terminally resolved as expired (abandoned).
        pub outcome_expired: u64,
        /// Spans currently buffered in the ring.
        pub spans_buffered: usize,
        /// Spans evicted to stay within the ring bound.
        pub spans_evicted: u64,
    }

    impl ObsSnapshot {
        /// Stats for one stage by name (`"match"`, `"render"`, ...).
        pub fn stage(&self, name: &str) -> Option<HistogramStats> {
            self.stages
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| *s)
        }
    }
}

#[cfg(not(feature = "obs"))]
mod imp {
    //! No-op shims: same call surface as the instrumented facade, all
    //! methods empty and inlined away.
    #![allow(dead_code)]

    /// Zero-sized stage timer.
    pub type StageTimer = ();

    /// Pipeline stages (names only; nothing records them).
    #[derive(Debug, Clone, Copy)]
    pub enum Stage {
        /// Ingesting a publication.
        Publish,
        /// Dialect detection.
        Detect,
        /// Subscription matching.
        Match,
        /// Envelope rendering.
        Render,
        /// Push fan-out.
        Deliver,
        /// One redelivery attempt.
        Retry,
        /// Dead-letter move.
        DeadLetter,
        /// Terminal resolution.
        Resolve,
        /// Staged-engine handoff wait.
        Handoff,
    }

    /// Terminal delivery outcomes (names only; nothing records them).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Outcome {
        /// Reached the consumer.
        Delivered,
        /// Retry budgets exhausted.
        DeadLettered,
        /// Abandoned before reaching the consumer.
        Expired,
    }

    /// No-op observability state.
    #[derive(Debug, Default)]
    pub struct BrokerObs;

    impl BrokerObs {
        /// A no-op facade.
        pub fn new() -> Self {
            BrokerObs
        }

        /// Always `false` (nothing records).
        #[inline(always)]
        pub fn enabled(&self) -> bool {
            false
        }

        /// No-op.
        #[inline(always)]
        pub fn set_enabled(&self, _on: bool) {}

        /// Always 0 — sequence numbers only matter to spans.
        #[inline(always)]
        pub fn next_seq(&self) -> u64 {
            0
        }

        /// No-op.
        #[inline(always)]
        pub fn start(&self) -> StageTimer {}

        /// No-op.
        #[inline(always)]
        pub fn stage(&self, _s: Stage, _seq: u64, _t: StageTimer, _at_ms: u64, _items: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn stage_dur(&self, _s: Stage, _seq: u64, _dur_ns: u64, _at_ms: u64, _items: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn retry(&self, _seq: u64, _sub: &str, _attempt: u32, _at_ms: u64, _dur_ns: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn dead_letter(&self, _seq: u64, _sub: &str, _attempt: u32, _at_ms: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn resolve(
            &self,
            _seq: u64,
            _sub: &str,
            _attempt: u32,
            _published_at_ms: u64,
            _at_ms: u64,
            _outcome: Outcome,
        ) {
        }

        /// No-op.
        #[inline(always)]
        pub fn record_publication(&self) {}

        /// No-op.
        #[inline(always)]
        pub fn record_outcomes(&self, _delivered: u64, _failed: u64, _mediated: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn set_subscriptions(&self, _n: i64) {}

        /// No-op.
        #[inline(always)]
        pub fn record_dead_letter(&self) {}

        /// No-op.
        #[inline(always)]
        pub fn record_backoff(&self, _delay_ms: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn set_redelivery_depth(&self, _n: i64) {}

        /// No-op.
        #[inline(always)]
        pub fn set_breakers_open(&self, _n: i64) {}
    }
}

pub use imp::*;
