#![warn(missing_docs)]
//! # wsm-messenger — the WS-Messenger mediation broker
//!
//! The paper's system contribution (§VII): "a scalable, reliable and
//! efficient WS-based message broker ... It implements both WS-Eventing
//! and WS-Notification specifications and can support both
//! specifications at the same time through a mediation approach."
//!
//! The broker here reproduces each capability §VII claims:
//!
//! * **Dual-specification endpoint.** One broker URI accepts WS-Eventing
//!   *and* WS-Notification traffic. "WS-Messenger automatically detects
//!   which specification the incoming SOAP messages use and processes
//!   them accordingly" — [`detect::SpecDialect::detect`] sniffs the
//!   body/header namespaces, distinguishing all four spec versions.
//! * **Response symmetry.** "Response messages follow the same
//!   specifications as request messages" — every handler answers with
//!   the codec of the detected dialect.
//! * **Consumer-native delivery.** "WS-Messenger makes sure that
//!   notification messages follow the expected specifications of the
//!   target event consumers. The specification type of a target event
//!   consumer is determined by the subscription request message type" —
//!   the registry tags each subscription with its dialect and
//!   [`render`] builds WSE-raw / WSE-wrapped / WSN-Notify / WSN-raw
//!   messages per consumer.
//! * **Pluggable pub/sub backend.** "WS-Messenger provides a generic
//!   interface that can use existing publish/subscribe systems as the
//!   underlying message systems" — [`backend::MessagingBackend`], with
//!   an in-memory implementation and an adapter over the `wsm-jms`
//!   provider.
//!
//! ```
//! use wsm_messenger::WsMessenger;
//! use wsm_transport::Network;
//! use wsm_eventing::{EventSink, Subscriber, SubscribeRequest, WseVersion};
//! use wsm_notification::{NotificationConsumer, WsnClient, WsnFilter, WsnSubscribeRequest, WsnVersion};
//! use wsm_xml::Element;
//!
//! let net = Network::new();
//! let broker = WsMessenger::start(&net, "http://broker");
//!
//! // A WS-Eventing consumer and a WS-Notification consumer, side by side.
//! let wse_sink = EventSink::start(&net, "http://sink-wse", WseVersion::Aug2004);
//! Subscriber::new(&net, WseVersion::Aug2004)
//!     .subscribe(broker.uri(), SubscribeRequest::push(wse_sink.epr())).unwrap();
//! let wsn_consumer = NotificationConsumer::start(&net, "http://sink-wsn", WsnVersion::V1_3);
//! WsnClient::new(&net, WsnVersion::V1_3)
//!     .subscribe(broker.uri(), &WsnSubscribeRequest::new(wsn_consumer.epr())
//!         .with_filter(WsnFilter::topic("storms"))).unwrap();
//!
//! // One publication reaches both, each in its own dialect.
//! broker.publish_on("storms", &Element::local("alert"));
//! assert_eq!(wse_sink.received().len(), 1);
//! assert_eq!(wsn_consumer.notifications().len(), 1);
//! ```

pub mod backend;
pub mod broker;
pub mod delivery;
pub mod detect;
pub mod event;
pub mod obs;
pub mod registry;
pub mod reliability;
pub mod render;
pub mod stage;

pub use backend::{InMemoryBackend, JmsBackend, MessagingBackend};
pub use broker::{MediationStats, WsMessenger};
#[cfg(feature = "obs")]
pub use delivery::ResolvedMark;
pub use delivery::{DeliveryEngine, DispatchMode, FailKind, FanOutReport, PushJob, StatsDelta};
pub use detect::SpecDialect;
pub use event::InternalEvent;
#[cfg(feature = "obs")]
pub use obs::ObsSnapshot;
pub use registry::{
    BrokerDeliveryMode, BrokerSubscription, QueuedEvent, SubscriptionStatus, UnifiedFilters,
};
pub use reliability::{
    BreakerConfig, BreakerState, CircuitBreaker, DeadLetter, FaultTolerance, PumpReport,
    ReliabilityState,
};
pub use render::{render_notification, render_notification_cached, RenderCache};
pub use stage::{EventSink as DeliverySink, EventSource, NetworkSink, SendReport, VecSource};
#[cfg(feature = "obs")]
pub use wsm_obs::{
    reconstruct, story_for, DeliveryStory, HistogramStats, Outcome, SloReport, SloSpec, SpanRecord,
    Stage, TraceContext,
};
