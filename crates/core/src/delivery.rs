//! Parallel push fan-out.
//!
//! The broker's push deliveries are independent of each other within a
//! single publication — each matched subscriber gets exactly one
//! envelope — so the delivery engine may overlap the
//! serialize-send-retry work across a worker pool without touching the
//! ordering guarantee: a publication blocks until its whole fan-out
//! completes, so subscriber *S* always observes a publisher's event *n*
//! before its event *n+1*.
//!
//! The pool is **persistent and lazy**: worker threads spawn the first
//! time a publication has enough push jobs to amortize them
//! (`PARALLEL_THRESHOLD`) and then park on a crossbeam channel
//! between publications, so steady-state dispatch costs two channel
//! hops per message and no thread creation. Small fan-outs (and
//! `set_fanout_workers(0|1)`) deliver inline on the publishing thread.
//!
//! Workers report per-delivery outcomes; the caller merges them into
//! one [`StatsDelta`] applied to the broker's `MediationStats` once per
//! publication (instead of one lock round-trip per message), and drops
//! failed subscriptions *after* the fan-out completes so worker threads
//! never take registry locks.

use crossbeam::channel::{bounded, unbounded, Sender};
use parking_lot::Mutex;
use std::thread;
use wsm_soap::Envelope;
use wsm_transport::{AttemptClass, Network, TransportError};

/// How many push jobs a publication needs before the worker pool is
/// worth its dispatch cost. Below this the engine delivers inline on
/// the publishing thread.
const PARALLEL_THRESHOLD: usize = 4;

/// The default worker count: one per available core.
pub fn default_workers() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// How a delivery failed — the distinction that decides its fate.
///
/// The seed conflated these: a SOAP fault from a live-but-rejecting
/// consumer and a dropped datagram both counted as "failed" and burned
/// the same retry budget. They are different problems. A **transient**
/// failure (loss, missing endpoint, no response) means *try again
/// later*; a **poison** response (SOAP fault, refused connection)
/// means the endpoint is alive and saying no — retrying back-to-back
/// is pointless, and only these count toward the small
/// [`poison_budget`](crate::reliability::FaultTolerance::poison_budget)
/// that dead-letters a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// The message may succeed if simply sent again later.
    Transient,
    /// The endpoint actively rejected the message.
    Poison,
}

impl FailKind {
    /// Classify a transport error.
    pub fn of(err: &TransportError) -> FailKind {
        match err {
            TransportError::Fault(_) | TransportError::Refused(_) => FailKind::Poison,
            TransportError::NoEndpoint(_)
            | TransportError::Dropped(_)
            | TransportError::NoResponse(_) => FailKind::Transient,
        }
    }
}

/// One rendered push delivery, ready to send.
#[derive(Debug, Clone)]
pub struct PushJob {
    /// Subscription the delivery answers (dropped on failure).
    pub sub_id: String,
    /// Consumer address.
    pub address: String,
    /// The rendered envelope.
    pub envelope: Envelope,
    /// Whether the consumer is WS-Eventing (for the per-family stat).
    pub wse: bool,
    /// Whether the delivery crosses specification families.
    pub mediated: bool,
    /// Publication sequence number (the trace id — threads the causal
    /// trace context through queues and retries).
    pub seq: u64,
    /// Virtual time the publication was ingested, for end-to-end
    /// latency at terminal resolution.
    pub published_at_ms: u64,
    /// Attempt ordinal for this send: 0 for the original fan-out, 1..
    /// for queued redeliveries.
    pub attempt: u32,
}

/// Stat increments accumulated over one fan-out, merged into
/// [`crate::broker::MediationStats`] by the caller.
#[derive(Debug, Default, Clone, Copy)]
pub struct StatsDelta {
    /// Deliveries to WS-Eventing consumers.
    pub delivered_wse: u64,
    /// Deliveries to WS-Notification consumers.
    pub delivered_wsn: u64,
    /// Deliveries that crossed specification families.
    pub mediated: u64,
    /// Deliveries that exhausted their attempt budget.
    pub failed: u64,
    /// Retries performed.
    pub retried: u64,
    /// Successful deliveries that came off the redelivery queue.
    pub redelivered: u64,
    /// Messages moved to the dead-letter store.
    pub dead_lettered: u64,
}

impl StatsDelta {
    fn record(&mut self, result: &JobResult) {
        self.retried += result.retried;
        if result.ok {
            if result.job.wse {
                self.delivered_wse += 1;
            } else {
                self.delivered_wsn += 1;
            }
            if result.job.mediated {
                self.mediated += 1;
            }
        } else {
            self.failed += 1;
        }
    }
}

/// What one publication's fan-out did.
pub struct FanOutReport {
    /// Successful deliveries.
    pub delivered: usize,
    /// Stat increments to merge.
    pub delta: StatsDelta,
    /// Failed jobs, classified and handed back intact so the broker
    /// can re-enqueue them (fault-tolerant mode) or drop the
    /// subscription (legacy mode).
    pub failures: Vec<(FailKind, PushJob)>,
    /// Jobs that delivered, handed back (sans envelope use) so the
    /// broker can record their terminal resolution spans.
    #[cfg(feature = "obs")]
    pub resolved: Vec<PushJob>,
    /// Wall-clock send duration per job (including retries), for the
    /// broker's per-subscriber delivery-latency histogram.
    #[cfg(feature = "obs")]
    pub latencies_ns: Vec<u64>,
}

struct JobResult {
    ok: bool,
    retried: u64,
    /// Failure classification; `None` when the send succeeded.
    kind: Option<FailKind>,
    /// The job, handed back whether it succeeded or failed.
    job: PushJob,
    #[cfg(feature = "obs")]
    elapsed_ns: u64,
}

/// One unit of work queued to the pool: the delivery itself plus the
/// per-publication results channel it reports into.
struct Job {
    push: PushJob,
    attempts: u32,
    results: Sender<JobResult>,
}

/// One-shot or retried send, per the configured attempt budget.
///
/// Only **transient** errors consume the immediate-retry budget; a
/// poison response (SOAP fault, refused connection) short-circuits —
/// the endpoint just told us it would reject an identical resend.
fn send_with_retry(
    net: &Network,
    to: &str,
    env: &Envelope,
    attempts: u32,
    job_attempt: u32,
) -> (Result<(), FailKind>, u64) {
    let mut retried = 0;
    for i in 0..attempts {
        // Only the very first send of a job's first attempt counts as
        // a first-class attempt; everything after is a re-send of the
        // same message and is attributed as such in transport metrics.
        let class = if job_attempt > 0 || i > 0 {
            AttemptClass::Retry
        } else {
            AttemptClass::First
        };
        match net.send_class(to, env.clone(), class) {
            Ok(()) => return (Ok(()), retried),
            Err(err) => {
                let kind = FailKind::of(&err);
                if kind == FailKind::Poison {
                    return (Err(kind), retried);
                }
                if i + 1 < attempts {
                    retried += 1;
                }
            }
        }
    }
    (Err(FailKind::Transient), retried)
}

fn run_job(net: &Network, push: PushJob, attempts: u32) -> JobResult {
    #[cfg(feature = "obs")]
    let started = std::time::Instant::now();
    let (outcome, retried) =
        send_with_retry(net, &push.address, &push.envelope, attempts, push.attempt);
    #[cfg(feature = "obs")]
    let elapsed_ns = started.elapsed().as_nanos() as u64;
    JobResult {
        ok: outcome.is_ok(),
        retried,
        kind: outcome.err(),
        job: push,
        #[cfg(feature = "obs")]
        elapsed_ns,
    }
}

/// A broker's delivery engine: sequential inline sends for small
/// batches, a persistent worker pool for large ones.
pub struct DeliveryEngine {
    pool: Mutex<Option<Pool>>,
}

struct Pool {
    tx: Sender<Job>,
    size: usize,
}

impl Default for DeliveryEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl DeliveryEngine {
    /// An engine with no worker threads yet (they spawn on demand).
    pub fn new() -> Self {
        DeliveryEngine {
            pool: Mutex::new(None),
        }
    }

    /// Execute a publication's push jobs: inline when the batch is
    /// small or `workers <= 1`, otherwise over the worker pool.
    pub fn execute(
        &self,
        net: &Network,
        attempts: u32,
        workers: usize,
        jobs: Vec<PushJob>,
    ) -> FanOutReport {
        let attempts = attempts.max(1);
        if workers <= 1 || jobs.len() < PARALLEL_THRESHOLD {
            return execute_sequential(net, attempts, jobs);
        }

        let tx = self.pool_sender(net, workers);
        let expected = jobs.len();
        let (res_tx, res_rx) = bounded::<JobResult>(expected);
        for push in jobs {
            tx.send(Job {
                push,
                attempts,
                results: res_tx.clone(),
            })
            .expect("delivery pool alive while engine exists");
        }
        drop(res_tx);

        let mut delta = StatsDelta::default();
        let mut failures = Vec::new();
        let mut delivered = 0;
        #[cfg(feature = "obs")]
        let mut resolved = Vec::with_capacity(expected);
        #[cfg(feature = "obs")]
        let mut latencies_ns = Vec::with_capacity(expected);
        for result in res_rx.iter().take(expected) {
            delta.record(&result);
            #[cfg(feature = "obs")]
            latencies_ns.push(result.elapsed_ns);
            if result.ok {
                delivered += 1;
            }
            match result.kind {
                Some(kind) => failures.push((kind, result.job)),
                None => {
                    #[cfg(feature = "obs")]
                    resolved.push(result.job);
                }
            }
        }
        FanOutReport {
            delivered,
            delta,
            failures,
            #[cfg(feature = "obs")]
            resolved,
            #[cfg(feature = "obs")]
            latencies_ns,
        }
    }

    /// The job queue for a pool of exactly `workers` threads, spawning
    /// or resizing the pool as needed. On resize the old queue's sender
    /// drops here, so the old workers drain their queue and exit.
    fn pool_sender(&self, net: &Network, workers: usize) -> Sender<Job> {
        let mut pool = self.pool.lock();
        if let Some(p) = pool.as_ref() {
            if p.size == workers {
                return p.tx.clone();
            }
        }
        let (tx, rx) = unbounded::<Job>();
        for i in 0..workers {
            let rx = rx.clone();
            let net = net.clone();
            // Named threads so the transport trace can attribute each
            // delivery to the worker that sent it.
            thread::Builder::new()
                .name(format!("wsm-push-{i}"))
                .spawn(move || {
                    for job in rx.iter() {
                        // A dropped receiver just means the publication's
                        // collector already gave up; nothing to unwind.
                        let _ = job.results.send(run_job(&net, job.push, job.attempts));
                    }
                })
                .expect("spawn delivery worker");
        }
        *pool = Some(Pool {
            tx: tx.clone(),
            size: workers,
        });
        tx
    }
}

fn execute_sequential(net: &Network, attempts: u32, jobs: Vec<PushJob>) -> FanOutReport {
    let mut delta = StatsDelta::default();
    let mut failures = Vec::new();
    let mut delivered = 0;
    #[cfg(feature = "obs")]
    let mut resolved = Vec::with_capacity(jobs.len());
    #[cfg(feature = "obs")]
    let mut latencies_ns = Vec::with_capacity(jobs.len());
    for job in jobs {
        let result = run_job(net, job, attempts);
        delta.record(&result);
        #[cfg(feature = "obs")]
        latencies_ns.push(result.elapsed_ns);
        if result.ok {
            delivered += 1;
        }
        match result.kind {
            Some(kind) => failures.push((kind, result.job)),
            None => {
                #[cfg(feature = "obs")]
                resolved.push(result.job);
            }
        }
    }
    FanOutReport {
        delivered,
        delta,
        failures,
        #[cfg(feature = "obs")]
        resolved,
        #[cfg(feature = "obs")]
        latencies_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsm_soap::SoapVersion;
    use wsm_transport::SoapHandler;
    use wsm_xml::Element;

    struct Counter(parking_lot::Mutex<u32>);
    impl SoapHandler for Counter {
        fn handle(&self, _req: Envelope) -> Result<Option<Envelope>, wsm_soap::Fault> {
            *self.0.lock() += 1;
            Ok(None)
        }
    }

    fn jobs(n: usize, address: &str) -> Vec<PushJob> {
        (0..n)
            .map(|i| PushJob {
                sub_id: format!("wsm-{i}"),
                address: address.to_string(),
                envelope: Envelope::new(SoapVersion::V11).with_body(Element::local("e")),
                wse: i % 2 == 0,
                mediated: false,
                seq: 1,
                published_at_ms: 0,
                attempt: 0,
            })
            .collect()
    }

    #[test]
    fn parallel_and_sequential_agree() {
        for workers in [1, 4] {
            let net = Network::new();
            let counter = std::sync::Arc::new(Counter(parking_lot::Mutex::new(0)));
            net.register("http://c", counter.clone());
            let engine = DeliveryEngine::new();
            let report = engine.execute(&net, 1, workers, jobs(16, "http://c"));
            assert_eq!(report.delivered, 16, "workers={workers}");
            assert_eq!(report.delta.delivered_wse, 8);
            assert_eq!(report.delta.delivered_wsn, 8);
            assert_eq!(report.delta.failed, 0);
            assert!(report.failures.is_empty());
            assert_eq!(*counter.0.lock(), 16);
        }
    }

    #[test]
    fn pool_persists_across_publications() {
        let net = Network::new();
        let counter = std::sync::Arc::new(Counter(parking_lot::Mutex::new(0)));
        net.register("http://c", counter.clone());
        let engine = DeliveryEngine::new();
        for _ in 0..10 {
            let report = engine.execute(&net, 1, 4, jobs(8, "http://c"));
            assert_eq!(report.delivered, 8);
        }
        assert_eq!(*counter.0.lock(), 80);
        assert_eq!(engine.pool.lock().as_ref().map(|p| p.size), Some(4));
    }

    #[test]
    fn failures_reported_with_retry_budget() {
        let net = Network::new();
        // No handler registered: every send fails.
        let engine = DeliveryEngine::new();
        let report = engine.execute(&net, 3, 4, jobs(8, "http://nowhere"));
        assert_eq!(report.delivered, 0);
        assert_eq!(report.delta.failed, 8);
        assert_eq!(
            report.delta.retried, 16,
            "attempts-1 retries per failed job"
        );
        assert_eq!(report.failures.len(), 8);
        for (kind, job) in &report.failures {
            assert_eq!(*kind, FailKind::Transient, "missing endpoint is transient");
            assert_eq!(job.address, "http://nowhere", "job handed back intact");
        }
    }

    struct Faulty;
    impl SoapHandler for Faulty {
        fn handle(&self, _req: Envelope) -> Result<Option<Envelope>, wsm_soap::Fault> {
            Err(wsm_soap::Fault::receiver("always rejects"))
        }
    }

    #[test]
    fn poison_responses_skip_the_retry_budget() {
        let net = Network::new();
        net.register("http://faulty", std::sync::Arc::new(Faulty));
        let engine = DeliveryEngine::new();
        let report = engine.execute(&net, 3, 1, jobs(2, "http://faulty"));
        assert_eq!(report.delivered, 0);
        assert_eq!(report.delta.failed, 2);
        assert_eq!(
            report.delta.retried, 0,
            "a SOAP fault short-circuits the immediate retries"
        );
        assert!(report
            .failures
            .iter()
            .all(|(kind, _)| *kind == FailKind::Poison));
    }

    #[test]
    fn small_batches_stay_inline() {
        let net = Network::new();
        let counter = std::sync::Arc::new(Counter(parking_lot::Mutex::new(0)));
        net.register("http://c", counter.clone());
        let engine = DeliveryEngine::new();
        let report = engine.execute(&net, 1, 4, jobs(PARALLEL_THRESHOLD - 1, "http://c"));
        assert_eq!(report.delivered, PARALLEL_THRESHOLD - 1);
        assert!(
            engine.pool.lock().is_none(),
            "no threads spawned below the threshold"
        );
    }
}
