//! Staged push fan-out with sharded batch handoff.
//!
//! The broker's push deliveries are independent of each other within a
//! single publication — each matched subscriber gets exactly one
//! envelope — so the delivery engine may overlap the
//! serialize-send-retry work across a worker pool without touching the
//! ordering guarantee: a publication blocks until its whole fan-out
//! completes, so subscriber *S* always observes a publisher's event *n*
//! before its event *n+1*.
//!
//! The first engine handed **one job per subscriber** across a shared
//! channel; at mid fan-out the per-message channel hop cost more than
//! the send it dispatched and parallel lost to sequential. This engine
//! hands off **one `PubWork` per worker per publication**:
//!
//! * the publication's jobs are pre-partitioned into per-worker
//!   **shards**, filled and sealed incrementally while the broker's
//!   [`EventSource`] is still rendering — so rendering overlaps with
//!   delivery instead of barriering per publication;
//! * workers **batch-claim** runs of `CLAIM` jobs from their home
//!   shard with one atomic `fetch_add`, then **steal** from the other
//!   shards in round-robin order when theirs runs dry, so a slow
//!   endpoint in one shard cannot idle the rest of the pool;
//! * the publishing thread seals the last shard and then participates
//!   in claiming itself, so the engine never waits on a parked worker
//!   to finish work the publisher could do.
//!
//! Which path a publication takes is decided per publication by a
//! [`DispatchMode`]: `Sharded` forces the pool, `Inline` forces a
//! streaming single-thread send loop, and the default `Adaptive` mode
//! keeps a per-size-bucket EWMA of observed per-job cost for both and
//! picks the cheaper, probing the loser occasionally so a regime
//! change (e.g. wire latency appearing) is noticed. With
//! `set_fanout_workers(0|1)` the engine is the sequential baseline: a
//! barriered collect-then-send loop, preserving the legacy semantics
//! exactly.
//!
//! The pool is **persistent and lazy**: worker threads spawn the first
//! time a sharded publication runs and then park on their per-worker
//! channel between publications. Workers report per-delivery outcomes
//! into a per-publication `Gather` merged once under one lock, so
//! the broker applies one [`StatsDelta`] per publication and drops
//! failed subscriptions *after* the fan-out completes — worker threads
//! never take registry locks.

use crate::stage::{EventSink, EventSource, NetworkSink, SendReport, VecSource};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};
use wsm_soap::Envelope;
use wsm_transport::{Network, TransportError};

/// How many push jobs a publication needs before parallel dispatch is
/// worth considering. Below this the engine always streams inline on
/// the publishing thread.
const PARALLEL_THRESHOLD: usize = 4;

/// How many jobs one claim takes from a shard: large enough that a
/// worker's atomic traffic is 1/CLAIM of per-job handoff, small enough
/// that stealing can still rebalance a slow shard.
const CLAIM: usize = 8;

/// The default worker count: one per available core.
pub fn default_workers() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// How a delivery failed — the distinction that decides its fate.
///
/// The seed conflated these: a SOAP fault from a live-but-rejecting
/// consumer and a dropped datagram both counted as "failed" and burned
/// the same retry budget. They are different problems. A **transient**
/// failure (loss, missing endpoint, no response) means *try again
/// later*; a **poison** response (SOAP fault, refused connection)
/// means the endpoint is alive and saying no — retrying back-to-back
/// is pointless, and only these count toward the small
/// [`poison_budget`](crate::reliability::FaultTolerance::poison_budget)
/// that dead-letters a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// The message may succeed if simply sent again later.
    Transient,
    /// The endpoint actively rejected the message.
    Poison,
}

impl FailKind {
    /// Classify a transport error.
    pub fn of(err: &TransportError) -> FailKind {
        match err {
            TransportError::Fault(_) | TransportError::Refused(_) => FailKind::Poison,
            TransportError::NoEndpoint(_)
            | TransportError::Dropped(_)
            | TransportError::NoResponse(_) => FailKind::Transient,
        }
    }
}

/// One rendered push delivery, ready to send.
#[derive(Debug, Clone)]
pub struct PushJob {
    /// Subscription the delivery answers (dropped on failure).
    pub sub_id: String,
    /// Consumer address.
    pub address: String,
    /// The rendered envelope.
    pub envelope: Envelope,
    /// Whether the consumer is WS-Eventing (for the per-family stat).
    pub wse: bool,
    /// Whether the delivery crosses specification families.
    pub mediated: bool,
    /// Publication sequence number (the trace id — threads the causal
    /// trace context through queues and retries).
    pub seq: u64,
    /// Virtual time the publication was ingested, for end-to-end
    /// latency at terminal resolution.
    pub published_at_ms: u64,
    /// Attempt ordinal for this send: 0 for the original fan-out, 1..
    /// for queued redeliveries.
    pub attempt: u32,
}

/// How the engine dispatches a publication's fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Per-size-bucket EWMA of observed per-job cost picks streaming
    /// vs sharded per publication, probing the loser occasionally.
    #[default]
    Adaptive,
    /// Always stream on the publishing thread (render → send per job).
    Inline,
    /// Always hand off to the sharded worker pool.
    Sharded,
}

impl DispatchMode {
    fn as_u8(self) -> u8 {
        match self {
            DispatchMode::Adaptive => 0,
            DispatchMode::Inline => 1,
            DispatchMode::Sharded => 2,
        }
    }

    fn from_u8(v: u8) -> DispatchMode {
        match v {
            1 => DispatchMode::Inline,
            2 => DispatchMode::Sharded,
            _ => DispatchMode::Adaptive,
        }
    }
}

/// Stat increments accumulated over one fan-out, merged into
/// [`crate::broker::MediationStats`] by the caller.
#[derive(Debug, Default, Clone, Copy)]
pub struct StatsDelta {
    /// Deliveries to WS-Eventing consumers.
    pub delivered_wse: u64,
    /// Deliveries to WS-Notification consumers.
    pub delivered_wsn: u64,
    /// Deliveries that crossed specification families.
    pub mediated: u64,
    /// Deliveries that exhausted their attempt budget.
    pub failed: u64,
    /// Retries performed.
    pub retried: u64,
    /// Successful deliveries that came off the redelivery queue.
    pub redelivered: u64,
    /// Messages moved to the dead-letter store.
    pub dead_lettered: u64,
}

impl StatsDelta {
    fn merge(&mut self, o: &StatsDelta) {
        self.delivered_wse += o.delivered_wse;
        self.delivered_wsn += o.delivered_wsn;
        self.mediated += o.mediated;
        self.failed += o.failed;
        self.retried += o.retried;
        self.redelivered += o.redelivered;
        self.dead_lettered += o.dead_lettered;
    }
}

/// Identity of one first-round success, handed back so the broker can
/// record its terminal resolution span without keeping the (heavier)
/// job alive past the send.
#[cfg(feature = "obs")]
#[derive(Debug, Clone)]
pub struct ResolvedMark {
    /// Publication sequence number (the trace id).
    pub seq: u64,
    /// Subscription the delivery answered.
    pub sub_id: String,
    /// Attempt ordinal of the successful send.
    pub attempt: u32,
    /// Virtual ingest time, for the end-to-end latency.
    pub published_at_ms: u64,
}

/// Per-thread accumulator of one fan-out's outcomes; workers each keep
/// one and merge it exactly once per publication.
#[derive(Default)]
struct Gather {
    delivered: usize,
    delta: StatsDelta,
    failures: Vec<(FailKind, PushJob)>,
    #[cfg(feature = "obs")]
    resolved: Vec<ResolvedMark>,
    #[cfg(feature = "obs")]
    latencies_ns: Vec<u64>,
}

impl Gather {
    fn merge(&mut self, other: Gather) {
        self.delivered += other.delivered;
        self.delta.merge(&other.delta);
        self.failures.extend(other.failures);
        #[cfg(feature = "obs")]
        {
            self.resolved.extend(other.resolved);
            self.latencies_ns.extend(other.latencies_ns);
        }
    }

    /// Record one send of an owned job (inline paths: the job moves
    /// into the failure list or is dropped on success).
    fn tally_owned(&mut self, job: PushJob, rep: &SendReport) {
        self.delta.retried += rep.retried;
        #[cfg(feature = "obs")]
        self.latencies_ns.push(rep.elapsed_ns);
        match rep.result {
            Ok(()) => {
                self.count_delivered(&job);
                #[cfg(feature = "obs")]
                self.resolved.push(ResolvedMark {
                    seq: job.seq,
                    sub_id: job.sub_id,
                    attempt: job.attempt,
                    published_at_ms: job.published_at_ms,
                });
            }
            Err(kind) => {
                self.delta.failed += 1;
                self.failures.push((kind, job));
            }
        }
    }

    /// Record one send of a shard-resident job (sharded path: jobs
    /// stay in the shared shard, so the rare failure clones out).
    fn tally_ref(&mut self, job: &PushJob, rep: &SendReport) {
        self.delta.retried += rep.retried;
        #[cfg(feature = "obs")]
        self.latencies_ns.push(rep.elapsed_ns);
        match rep.result {
            Ok(()) => {
                self.count_delivered(job);
                #[cfg(feature = "obs")]
                self.resolved.push(ResolvedMark {
                    seq: job.seq,
                    sub_id: job.sub_id.clone(),
                    attempt: job.attempt,
                    published_at_ms: job.published_at_ms,
                });
            }
            Err(kind) => {
                self.delta.failed += 1;
                self.failures.push((kind, job.clone()));
            }
        }
    }

    fn count_delivered(&mut self, job: &PushJob) {
        self.delivered += 1;
        if job.wse {
            self.delta.delivered_wse += 1;
        } else {
            self.delta.delivered_wsn += 1;
        }
        if job.mediated {
            self.delta.mediated += 1;
        }
    }
}

/// What one publication's fan-out did.
pub struct FanOutReport {
    /// Successful deliveries.
    pub delivered: usize,
    /// Total push jobs the source yielded.
    pub jobs: usize,
    /// Which dispatch path ran: `"sequential"` (barriered baseline),
    /// `"inline"` (streaming on the publishing thread), or
    /// `"sharded"` (worker pool).
    pub mode: &'static str,
    /// Jobs claimed from a non-home shard (sharded path only).
    pub steals: u64,
    /// Wall time the publishing thread spent waiting for workers to
    /// finish after it sealed the last shard and drained its own
    /// claims (sharded path only; the broker records it as the
    /// `handoff` stage).
    pub join_wait_ns: u64,
    /// Stat increments to merge.
    pub delta: StatsDelta,
    /// Failed jobs, classified and handed back intact so the broker
    /// can re-enqueue them (fault-tolerant mode) or drop the
    /// subscription (legacy mode).
    pub failures: Vec<(FailKind, PushJob)>,
    /// First-round successes, identified so the broker can record
    /// their terminal resolution spans.
    #[cfg(feature = "obs")]
    pub resolved: Vec<ResolvedMark>,
    /// Wall-clock send duration per job (including retries), for the
    /// broker's per-subscriber delivery-latency histogram.
    #[cfg(feature = "obs")]
    pub latencies_ns: Vec<u64>,
}

impl FanOutReport {
    fn from_gather(gather: Gather, jobs: usize, mode: &'static str) -> FanOutReport {
        FanOutReport {
            delivered: gather.delivered,
            jobs,
            mode,
            steals: 0,
            join_wait_ns: 0,
            delta: gather.delta,
            failures: gather.failures,
            #[cfg(feature = "obs")]
            resolved: gather.resolved,
            #[cfg(feature = "obs")]
            latencies_ns: gather.latencies_ns,
        }
    }
}

// ------------------------------------------------------ sharded work

/// One worker's slice of a publication: the jobs land exactly once
/// (sealed through the `OnceLock`), then any thread claims batches by
/// advancing `cursor`.
struct Shard {
    jobs: OnceLock<Vec<PushJob>>,
    cursor: AtomicUsize,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            jobs: OnceLock::new(),
            cursor: AtomicUsize::new(0),
        }
    }
}

/// One publication's handoff to the pool: a single `Arc` enqueued to
/// every worker, holding the per-worker shards and the completion
/// rendezvous.
///
/// Protocol: the publisher fills and seals shards while workers are
/// already claiming from the sealed ones; after sealing the last
/// shard it sets `done_publishing`, helps claim, and then waits on the
/// condvar until every worker has merged its local results. Workers
/// that find nothing claimable before `done_publishing` wait on the
/// same condvar (with a 1 ms belt against lost wakeups) for the next
/// seal.
struct PubWork {
    shards: Vec<Shard>,
    attempts: u32,
    /// Pool workers that will merge into `sync` (the publisher merges
    /// its own claims separately).
    workers: usize,
    done_publishing: AtomicBool,
    /// Shards sealed so far — the wait predicate for idle workers.
    sealed: AtomicUsize,
    steals: AtomicU64,
    sync: StdMutex<Collected>,
    cv: Condvar,
}

#[derive(Default)]
struct Collected {
    merged: usize,
    gather: Gather,
}

impl PubWork {
    fn new(workers: usize, attempts: u32) -> PubWork {
        PubWork {
            shards: (0..workers).map(|_| Shard::new()).collect(),
            attempts,
            workers,
            done_publishing: AtomicBool::new(false),
            sealed: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            sync: StdMutex::new(Collected::default()),
            cv: Condvar::new(),
        }
    }

    /// Publish shard `idx`'s jobs and wake anything waiting for work.
    /// The empty lock bracket orders the wakeup after any waiter's
    /// predicate check, so a worker that just saw the old seal count
    /// under the lock cannot then miss this notify.
    fn seal(&self, idx: usize, jobs: Vec<PushJob>) {
        if self.shards[idx].jobs.set(jobs).is_err() {
            unreachable!("shard sealed twice");
        }
        self.sealed.fetch_add(1, Ordering::Release);
        drop(self.sync.lock().expect("pubwork mutex"));
        self.cv.notify_all();
    }

    /// One pass over every shard, home first then stealing round-robin:
    /// claim batches of [`CLAIM`] jobs until nothing sealed has work
    /// left. Returns whether anything was claimed.
    fn claim_pass(
        &self,
        home: usize,
        sink: &mut NetworkSink,
        local: &mut Gather,
        stolen: &mut u64,
    ) -> bool {
        let n = self.shards.len();
        let mut claimed_any = false;
        for off in 0..n {
            let shard = &self.shards[(home + off) % n];
            let Some(jobs) = shard.jobs.get() else {
                continue;
            };
            loop {
                let start = shard.cursor.fetch_add(CLAIM, Ordering::Relaxed);
                if start >= jobs.len() {
                    break;
                }
                let end = (start + CLAIM).min(jobs.len());
                for job in &jobs[start..end] {
                    let rep = sink.send_event(job);
                    local.tally_ref(job, &rep);
                }
                claimed_any = true;
                if off != 0 {
                    *stolen += (end - start) as u64;
                }
            }
        }
        claimed_any
    }

    /// A pool worker's whole participation in this publication: claim
    /// until drained, then merge local results exactly once; the last
    /// merger wakes the publisher.
    fn run_worker(&self, home: usize, sink: &mut NetworkSink) {
        let mut local = Gather::default();
        let mut stolen = 0u64;
        loop {
            let sealed_before = self.sealed.load(Ordering::Acquire);
            let claimed = self.claim_pass(home, sink, &mut local, &mut stolen);
            if !claimed {
                if self.done_publishing.load(Ordering::Acquire) {
                    // Every shard is sealed and an empty pass found no
                    // unclaimed job: this publication is drained.
                    break;
                }
                let guard = self.sync.lock().expect("pubwork mutex");
                if self.sealed.load(Ordering::Acquire) == sealed_before
                    && !self.done_publishing.load(Ordering::Acquire)
                {
                    // Nothing new since the empty pass; sleep until the
                    // next seal (1 ms timeout as a lost-wakeup belt).
                    let _ = self
                        .cv
                        .wait_timeout(guard, Duration::from_millis(1))
                        .expect("pubwork condvar");
                }
            }
        }
        if stolen > 0 {
            self.steals.fetch_add(stolen, Ordering::Relaxed);
        }
        let mut c = self.sync.lock().expect("pubwork mutex");
        c.merged += 1;
        c.gather.merge(local);
        let all = c.merged == self.workers;
        drop(c);
        if all {
            self.cv.notify_all();
        }
    }

    /// Publisher-side rendezvous: block until every pool worker has
    /// merged, then take the combined results.
    fn wait_merged(&self) -> Gather {
        let mut c = self.sync.lock().expect("pubwork mutex");
        while c.merged < self.workers {
            let (guard, _) = self
                .cv
                .wait_timeout(c, Duration::from_millis(1))
                .expect("pubwork condvar");
            c = guard;
        }
        std::mem::take(&mut c.gather)
    }
}

// --------------------------------------------------------- governor

const MODE_INLINE: usize = 0;
const MODE_SHARDED: usize = 1;
/// Every `PROBE_PERIOD`-th adaptive publication in a bucket runs the
/// currently-losing mode so its EWMA tracks regime changes.
const PROBE_PERIOD: u64 = 64;
/// Probe cadence when the losing mode is losing by ≥ 1.5×: each probe is
/// then pure overhead paid on a path we are already confident about,
/// and at the default cadence that tax shows up as a systematic
/// few-percent throughput loss at small fan-outs (one ~50µs sharded
/// handoff amortized over 64 ~20µs inline publications).
const PROBE_PERIOD_LANDSLIDE: u64 = PROBE_PERIOD * 8;
/// Publications each path runs (per bucket) before its estimate is
/// trusted. A single-sample bootstrap proved fragile: one anomalous
/// sharded run — a scheduler hiccup during the handoff — mispriced
/// the path for hundreds of publications, because after bootstrap the
/// loser is only re-sampled on sparse probes blended at α = 1/8.
const BOOTSTRAP_SAMPLES: u64 = 3;

/// Adaptive mode's memory: an EWMA (α = 1/8) of observed per-job
/// nanoseconds for each dispatch path, in three fan-out size buckets
/// (the crossover depends on batch size: handoff amortizes over more
/// jobs as fan-out grows). Zero means "never measured" and forces a
/// bootstrap run of that path.
struct Governor {
    ewma: [[AtomicU64; 3]; 2],
    /// Samples observed per mode per bucket; gates bootstrap.
    seeds: [[AtomicU64; 3]; 2],
    ticks: [AtomicU64; 3],
}

impl Governor {
    fn new() -> Governor {
        Governor {
            ewma: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            seeds: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            ticks: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn bucket(jobs: usize) -> usize {
        if jobs < 16 {
            0
        } else if jobs < 128 {
            1
        } else {
            2
        }
    }

    /// Pick a path for a fan-out of `jobs`: bootstrap unmeasured paths
    /// first, then the cheaper EWMA, probing the loser periodically.
    fn choose(&self, jobs: usize) -> usize {
        let b = Self::bucket(jobs);
        if self.seeds[MODE_INLINE][b].load(Ordering::Relaxed) < BOOTSTRAP_SAMPLES {
            return MODE_INLINE;
        }
        if self.seeds[MODE_SHARDED][b].load(Ordering::Relaxed) < BOOTSTRAP_SAMPLES {
            return MODE_SHARDED;
        }
        let inline = self.ewma[MODE_INLINE][b].load(Ordering::Relaxed);
        let sharded = self.ewma[MODE_SHARDED][b].load(Ordering::Relaxed);
        // Sharded must *earn* dispatch by beating inline by more than
        // 25% estimated: at equal cost the streaming path is strictly
        // cheaper in side effects (no handoff, no worker wakeups), and
        // without the bias a near-tie flaps between modes on EWMA
        // noise — each flap paying a handoff the regime can't repay.
        let winner = if sharded < inline - inline / 4 {
            MODE_SHARDED
        } else {
            MODE_INLINE
        };
        let (won, lost) = if winner == MODE_INLINE {
            (inline, sharded)
        } else {
            (sharded, inline)
        };
        let t = self.ticks[b].fetch_add(1, Ordering::Relaxed);
        // A close race probes often (the crossover may genuinely flip);
        // a landslide — the loser estimated ≥1.5× the winner — probes
        // rarely, because there the probe itself is the only cost.
        let period = if lost > won + won / 2 {
            PROBE_PERIOD_LANDSLIDE
        } else {
            PROBE_PERIOD
        };
        if t % period == period - 1 {
            1 - winner
        } else {
            winner
        }
    }

    fn observe(&self, mode: usize, jobs: usize, elapsed_ns: u64) {
        let b = Self::bucket(jobs);
        let sample = (elapsed_ns / jobs.max(1) as u64).max(1);
        let seen = self.seeds[mode][b].fetch_add(1, Ordering::Relaxed);
        let cell = &self.ewma[mode][b];
        let old = cell.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else if seen < BOOTSTRAP_SAMPLES {
            // Seeding: average the bootstrap runs at half weight so
            // one anomalous run can't misprice the path.
            old / 2 + sample / 2
        } else if sample < old / 2 {
            // Fast attack: a sample under half the estimate is a
            // regime change, not noise — snap to it instead of
            // waiting ~10 sparse probes of 1/8-blend to converge.
            sample
        } else {
            old - old / 8 + sample / 8
        };
        cell.store(new, Ordering::Relaxed);
    }
}

// ----------------------------------------------------------- engine

/// A broker's delivery engine: a barriered sequential baseline, a
/// streaming inline path, and a sharded persistent worker pool, with
/// an adaptive governor choosing between the latter two.
pub struct DeliveryEngine {
    pool: Mutex<Option<Pool>>,
    mode: AtomicU8,
    governor: Governor,
}

/// One queue per worker: a publication enqueues exactly one
/// `Arc<PubWork>` to each, so steady-state dispatch is `workers`
/// channel hops per *publication* (not per message).
struct Pool {
    txs: Vec<Sender<Arc<PubWork>>>,
}

impl Default for DeliveryEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl DeliveryEngine {
    /// An engine with no worker threads yet (they spawn on demand).
    pub fn new() -> Self {
        DeliveryEngine {
            pool: Mutex::new(None),
            mode: AtomicU8::new(DispatchMode::Adaptive.as_u8()),
            governor: Governor::new(),
        }
    }

    /// Force (or restore) the dispatch policy for parallel fan-outs.
    pub fn set_mode(&self, mode: DispatchMode) {
        self.mode.store(mode.as_u8(), Ordering::Relaxed);
    }

    /// The current dispatch policy.
    pub fn mode(&self) -> DispatchMode {
        DispatchMode::from_u8(self.mode.load(Ordering::Relaxed))
    }

    /// Execute a publication's already-rendered push jobs (see
    /// [`DeliveryEngine::execute_source`] for the streaming form).
    pub fn execute(
        &self,
        net: &Network,
        attempts: u32,
        workers: usize,
        jobs: Vec<PushJob>,
    ) -> FanOutReport {
        self.execute_source(net, attempts, workers, VecSource::new(jobs))
    }

    /// Execute a publication's push fan-out from a streaming source:
    /// barriered sequentially when `workers <= 1`, streamed inline
    /// when the batch is small or the governor prefers it, otherwise
    /// sharded across the worker pool (overlapping the source's
    /// rendering with delivery).
    pub fn execute_source<S: EventSource>(
        &self,
        net: &Network,
        attempts: u32,
        workers: usize,
        mut source: S,
    ) -> FanOutReport {
        let attempts = attempts.max(1);
        if workers <= 1 {
            return execute_barriered(net, attempts, &mut source);
        }
        if source.expected() < PARALLEL_THRESHOLD {
            return execute_streaming(net, attempts, &mut source);
        }
        match self.mode() {
            DispatchMode::Inline => execute_streaming(net, attempts, &mut source),
            DispatchMode::Sharded => self.execute_sharded(net, attempts, workers, &mut source),
            DispatchMode::Adaptive => {
                let pick = self.governor.choose(source.expected());
                let started = Instant::now();
                let report = if pick == MODE_INLINE {
                    execute_streaming(net, attempts, &mut source)
                } else {
                    self.execute_sharded(net, attempts, workers, &mut source)
                };
                self.governor
                    .observe(pick, report.jobs, started.elapsed().as_nanos() as u64);
                report
            }
        }
    }

    fn execute_sharded(
        &self,
        net: &Network,
        attempts: u32,
        workers: usize,
        source: &mut dyn EventSource,
    ) -> FanOutReport {
        let txs = self.pool_senders(net, workers);
        let work = Arc::new(PubWork::new(workers, attempts));
        // Hand the publication to every worker *before* filling, so
        // delivery of early shards overlaps rendering of later ones.
        for tx in &txs {
            tx.send(Arc::clone(&work))
                .expect("delivery pool alive while engine exists");
        }
        let chunk = source.expected().div_ceil(workers).max(1);
        let mut total = 0usize;
        let mut idx = 0usize;
        let mut buf: Vec<PushJob> = Vec::with_capacity(chunk);
        while let Some(job) = source.next_event() {
            buf.push(job);
            total += 1;
            if buf.len() >= chunk && idx + 1 < workers {
                work.seal(idx, std::mem::replace(&mut buf, Vec::with_capacity(chunk)));
                idx += 1;
            }
        }
        work.seal(idx, buf);
        for k in idx + 1..workers {
            work.seal(k, Vec::new());
        }
        work.done_publishing.store(true, Ordering::Release);
        drop(work.sync.lock().expect("pubwork mutex"));
        work.cv.notify_all();
        // The publishing thread helps drain, starting from the shard
        // it sealed last (the one least likely to be claimed yet).
        let mut sink = NetworkSink::new(net.clone(), attempts);
        let mut local = Gather::default();
        let mut stolen = 0u64;
        work.claim_pass(workers - 1, &mut sink, &mut local, &mut stolen);
        let join_started = Instant::now();
        let mut gather = work.wait_merged();
        let join_wait_ns = join_started.elapsed().as_nanos() as u64;
        gather.merge(local);
        let steals = work.steals.load(Ordering::Relaxed) + stolen;
        let mut report = FanOutReport::from_gather(gather, total, "sharded");
        report.steals = steals;
        report.join_wait_ns = join_wait_ns;
        report
    }

    /// The per-worker queues for a pool of exactly `workers` threads,
    /// spawning or resizing the pool as needed. On resize the old
    /// queues' senders drop here, so the old workers drain their
    /// queues (merging any in-flight publication) and exit.
    fn pool_senders(&self, net: &Network, workers: usize) -> Vec<Sender<Arc<PubWork>>> {
        let mut pool = self.pool.lock();
        if let Some(p) = pool.as_ref() {
            if p.txs.len() == workers {
                return p.txs.clone();
            }
        }
        let mut txs = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = unbounded::<Arc<PubWork>>();
            let net = net.clone();
            // Named threads so the transport trace can attribute each
            // delivery to the worker that sent it.
            thread::Builder::new()
                .name(format!("wsm-push-{i}"))
                .spawn(move || {
                    for work in rx.iter() {
                        let mut sink = NetworkSink::new(net.clone(), work.attempts);
                        work.run_worker(i, &mut sink);
                    }
                })
                .expect("spawn delivery worker");
            txs.push(tx);
        }
        *pool = Some(Pool { txs: txs.clone() });
        txs
    }
}

/// The sequential baseline: drain the source completely (the barrier),
/// then send in order on the publishing thread. This is the legacy
/// shape — chaos scenarios pin `workers = 1` to keep its deterministic
/// trace order.
fn execute_barriered(net: &Network, attempts: u32, source: &mut dyn EventSource) -> FanOutReport {
    let mut jobs = Vec::with_capacity(source.expected());
    while let Some(job) = source.next_event() {
        jobs.push(job);
    }
    let total = jobs.len();
    let mut sink = NetworkSink::new(net.clone(), attempts);
    let mut gather = Gather::default();
    for job in jobs {
        let rep = sink.send_event(&job);
        gather.tally_owned(job, &rep);
    }
    FanOutReport::from_gather(gather, total, "sequential")
}

/// The streaming inline path: pull one job, send it, repeat — no
/// intermediate batch `Vec`, and each envelope is sent while still hot
/// from its render.
fn execute_streaming(net: &Network, attempts: u32, source: &mut dyn EventSource) -> FanOutReport {
    let mut sink = NetworkSink::new(net.clone(), attempts);
    let mut gather = Gather::default();
    let mut total = 0usize;
    while let Some(job) = source.next_event() {
        total += 1;
        let rep = sink.send_event(&job);
        gather.tally_owned(job, &rep);
    }
    FanOutReport::from_gather(gather, total, "inline")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsm_soap::SoapVersion;
    use wsm_transport::SoapHandler;
    use wsm_xml::Element;

    struct Counter(parking_lot::Mutex<u32>);
    impl SoapHandler for Counter {
        fn handle(&self, _req: Envelope) -> Result<Option<Envelope>, wsm_soap::Fault> {
            *self.0.lock() += 1;
            Ok(None)
        }
    }

    fn jobs(n: usize, address: &str) -> Vec<PushJob> {
        jobs_at(n, |_| address.to_string())
    }

    fn jobs_at(n: usize, address: impl Fn(usize) -> String) -> Vec<PushJob> {
        (0..n)
            .map(|i| PushJob {
                sub_id: format!("wsm-{i}"),
                address: address(i),
                envelope: Envelope::new(SoapVersion::V11).with_body(Element::local("e")),
                wse: i % 2 == 0,
                mediated: false,
                seq: 1,
                published_at_ms: 0,
                attempt: 0,
            })
            .collect()
    }

    #[test]
    fn parallel_and_sequential_agree() {
        for workers in [1, 4] {
            let net = Network::new();
            let counter = std::sync::Arc::new(Counter(parking_lot::Mutex::new(0)));
            net.register("http://c", counter.clone());
            let engine = DeliveryEngine::new();
            let report = engine.execute(&net, 1, workers, jobs(16, "http://c"));
            assert_eq!(report.delivered, 16, "workers={workers}");
            assert_eq!(report.jobs, 16);
            assert_eq!(report.delta.delivered_wse, 8);
            assert_eq!(report.delta.delivered_wsn, 8);
            assert_eq!(report.delta.failed, 0);
            assert!(report.failures.is_empty());
            assert_eq!(*counter.0.lock(), 16);
        }
    }

    #[test]
    fn sharded_matches_sequential_outcomes() {
        // Mixed good/missing endpoints, forced through the sharded
        // path, must report exactly what the barriered baseline does.
        let net = Network::new();
        let counter = std::sync::Arc::new(Counter(parking_lot::Mutex::new(0)));
        net.register("http://c", counter.clone());
        let addr = |i: usize| {
            if i % 4 == 3 {
                "http://nowhere".to_string()
            } else {
                "http://c".to_string()
            }
        };
        let engine = DeliveryEngine::new();
        engine.set_mode(DispatchMode::Sharded);
        let report = engine.execute(&net, 2, 4, jobs_at(32, addr));
        assert_eq!(report.mode, "sharded");
        assert_eq!(report.jobs, 32);
        assert_eq!(report.delivered, 24);
        assert_eq!(report.delta.failed, 8);
        assert_eq!(report.delta.retried, 8, "one in-line retry per miss");
        assert_eq!(report.failures.len(), 8);
        assert!(report
            .failures
            .iter()
            .all(|(kind, job)| *kind == FailKind::Transient && job.address == "http://nowhere"));
        assert_eq!(*counter.0.lock(), 24);
        #[cfg(feature = "obs")]
        {
            assert_eq!(report.resolved.len(), 24);
            assert_eq!(report.latencies_ns.len(), 32);
        }
    }

    struct Sleepy(std::time::Duration);
    impl SoapHandler for Sleepy {
        fn handle(&self, _req: Envelope) -> Result<Option<Envelope>, wsm_soap::Fault> {
            std::thread::sleep(self.0);
            Ok(None)
        }
    }

    #[test]
    fn workers_steal_from_slow_shards() {
        // The first shard's endpoint is slow; everyone else finishes
        // their own shard and must take over part of the slow one.
        let net = Network::new();
        net.register(
            "http://slow",
            std::sync::Arc::new(Sleepy(Duration::from_millis(2))),
        );
        let counter = std::sync::Arc::new(Counter(parking_lot::Mutex::new(0)));
        net.register("http://fast", counter.clone());
        let addr = |i: usize| {
            if i < 16 {
                "http://slow".to_string()
            } else {
                "http://fast".to_string()
            }
        };
        let engine = DeliveryEngine::new();
        engine.set_mode(DispatchMode::Sharded);
        let report = engine.execute(&net, 1, 4, jobs_at(64, addr));
        assert_eq!(report.delivered, 64);
        assert!(
            report.steals > 0,
            "idle workers should claim from the slow shard"
        );
    }

    #[test]
    fn adaptive_governor_converges_to_sharded_under_wire_latency() {
        // With a real per-send delay, overlapping sends across threads
        // wins even on one core; after both paths' bootstrap runs
        // (BOOTSTRAP_SAMPLES each, inline first) the governor must
        // keep choosing the sharded path.
        let net = Network::new();
        net.register(
            "http://wire",
            std::sync::Arc::new(Sleepy(Duration::from_micros(200))),
        );
        let engine = DeliveryEngine::new();
        let mut modes = Vec::new();
        let boot = BOOTSTRAP_SAMPLES as usize;
        for _ in 0..(2 * boot + 4) {
            let report = engine.execute(&net, 1, 4, jobs(64, "http://wire"));
            assert_eq!(report.delivered, 64);
            modes.push(report.mode);
        }
        assert!(
            modes[..boot].iter().all(|m| *m == "inline"),
            "inline bootstraps first, got {modes:?}"
        );
        assert!(
            modes[boot..].iter().all(|m| *m == "sharded"),
            "EWMA should favor overlap under wire latency, got {modes:?}"
        );
    }

    #[test]
    fn pool_persists_across_publications() {
        let net = Network::new();
        let counter = std::sync::Arc::new(Counter(parking_lot::Mutex::new(0)));
        net.register("http://c", counter.clone());
        let engine = DeliveryEngine::new();
        engine.set_mode(DispatchMode::Sharded);
        for _ in 0..10 {
            let report = engine.execute(&net, 1, 4, jobs(8, "http://c"));
            assert_eq!(report.delivered, 8);
        }
        assert_eq!(*counter.0.lock(), 80);
        assert_eq!(
            engine.pool.lock().as_ref().map(|p| p.txs.len()),
            Some(4),
            "one persistent queue per worker"
        );
    }

    #[test]
    fn failures_reported_with_retry_budget() {
        let net = Network::new();
        // No handler registered: every send fails.
        let engine = DeliveryEngine::new();
        for mode in [DispatchMode::Inline, DispatchMode::Sharded] {
            engine.set_mode(mode);
            let report = engine.execute(&net, 3, 4, jobs(8, "http://nowhere"));
            assert_eq!(report.delivered, 0);
            assert_eq!(report.delta.failed, 8);
            assert_eq!(
                report.delta.retried, 16,
                "attempts-1 retries per failed job ({mode:?})"
            );
            assert_eq!(report.failures.len(), 8);
            for (kind, job) in &report.failures {
                assert_eq!(*kind, FailKind::Transient, "missing endpoint is transient");
                assert_eq!(job.address, "http://nowhere", "job handed back intact");
            }
        }
    }

    struct Faulty;
    impl SoapHandler for Faulty {
        fn handle(&self, _req: Envelope) -> Result<Option<Envelope>, wsm_soap::Fault> {
            Err(wsm_soap::Fault::receiver("always rejects"))
        }
    }

    #[test]
    fn poison_responses_skip_the_retry_budget() {
        let net = Network::new();
        net.register("http://faulty", std::sync::Arc::new(Faulty));
        let engine = DeliveryEngine::new();
        let report = engine.execute(&net, 3, 1, jobs(2, "http://faulty"));
        assert_eq!(report.delivered, 0);
        assert_eq!(report.mode, "sequential");
        assert_eq!(report.delta.failed, 2);
        assert_eq!(
            report.delta.retried, 0,
            "a SOAP fault short-circuits the immediate retries"
        );
        assert!(report
            .failures
            .iter()
            .all(|(kind, _)| *kind == FailKind::Poison));
    }

    #[test]
    fn small_batches_stay_inline() {
        let net = Network::new();
        let counter = std::sync::Arc::new(Counter(parking_lot::Mutex::new(0)));
        net.register("http://c", counter.clone());
        let engine = DeliveryEngine::new();
        engine.set_mode(DispatchMode::Sharded);
        let report = engine.execute(&net, 1, 4, jobs(PARALLEL_THRESHOLD - 1, "http://c"));
        assert_eq!(report.delivered, PARALLEL_THRESHOLD - 1);
        assert_eq!(report.mode, "inline");
        assert!(
            engine.pool.lock().is_none(),
            "no threads spawned below the threshold"
        );
    }
}
