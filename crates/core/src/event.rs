//! The broker's neutral internal event model.
//!
//! Mediation needs a representation that is *neither* spec's wire
//! format: inbound publications (WSE raw bodies, WSN `Notify`
//! messages, plain payload posts) normalize into [`InternalEvent`],
//! and outbound rendering re-encodes per consumer dialect. The
//! re-encode cost is what bench X-B1 measures.

use crate::detect::SpecDialect;
use wsm_addressing::EndpointReference;
use wsm_topics::TopicPath;
use wsm_xml::Element;

/// One publication, spec-neutral.
#[derive(Debug, Clone, PartialEq)]
pub struct InternalEvent {
    /// The topic, when the inbound dialect carries one (WSN) or the
    /// publisher supplied one out-of-band.
    pub topic: Option<TopicPath>,
    /// The payload element.
    pub payload: Element,
    /// The original producer, when known (brokered WSN).
    pub producer: Option<EndpointReference>,
    /// The dialect the publication arrived in, when it arrived over
    /// the wire — deliveries to consumers of the *other* family count
    /// as mediated in [`crate::broker::MediationStats`].
    pub origin: Option<SpecDialect>,
}

impl InternalEvent {
    /// An event with no topic (the WS-Eventing publication shape).
    pub fn raw(payload: Element) -> Self {
        InternalEvent {
            topic: None,
            payload,
            producer: None,
            origin: None,
        }
    }

    /// An event on a topic.
    pub fn on_topic(topic: &str, payload: Element) -> Self {
        InternalEvent {
            topic: TopicPath::parse(topic),
            payload,
            producer: None,
            origin: None,
        }
    }

    /// Builder-style producer reference.
    pub fn from_producer(mut self, producer: EndpointReference) -> Self {
        self.producer = Some(producer);
        self
    }

    /// Builder-style origin dialect.
    pub fn with_origin(mut self, origin: SpecDialect) -> Self {
        self.origin = Some(origin);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let e = InternalEvent::raw(Element::local("x"));
        assert!(e.topic.is_none());
        let e = InternalEvent::on_topic("a/b", Element::local("x"))
            .from_producer(EndpointReference::new("http://p"));
        assert_eq!(e.topic.unwrap().to_string(), "a/b");
        assert_eq!(e.producer.unwrap().address, "http://p");
    }

    #[test]
    fn bad_topic_is_none() {
        let e = InternalEvent::on_topic("", Element::local("x"));
        assert!(e.topic.is_none());
    }
}
