//! The broker's neutral internal event model.
//!
//! Mediation needs a representation that is *neither* spec's wire
//! format: inbound publications (WSE raw bodies, WSN `Notify`
//! messages, plain payload posts) normalize into [`InternalEvent`],
//! and outbound rendering re-encodes per consumer dialect. The
//! re-encode cost is what bench X-B1 measures.

use crate::detect::SpecDialect;
use std::sync::Arc;
use wsm_addressing::EndpointReference;
use wsm_topics::TopicPath;
use wsm_xml::{Element, SharedElement};

/// One publication, spec-neutral.
///
/// The payload is held as a shared, immutable subtree from the moment
/// the event enters the broker: every downstream stage — render cache,
/// pull queues, wrapped-delivery buffers, the current-message store —
/// clones an `Arc`, never the tree, and the payload's compact
/// serialization is computed at most once per publication no matter how
/// many consumers it fans out to.
#[derive(Debug, Clone, PartialEq)]
pub struct InternalEvent {
    /// The topic, when the inbound dialect carries one (WSN) or the
    /// publisher supplied one out-of-band.
    pub topic: Option<TopicPath>,
    /// The payload subtree, shared across the fan-out.
    pub payload: Arc<SharedElement>,
    /// The original producer, when known (brokered WSN).
    pub producer: Option<EndpointReference>,
    /// The dialect the publication arrived in, when it arrived over
    /// the wire — deliveries to consumers of the *other* family count
    /// as mediated in [`crate::broker::MediationStats`].
    pub origin: Option<SpecDialect>,
}

impl InternalEvent {
    /// An event with no topic (the WS-Eventing publication shape).
    pub fn raw(payload: Element) -> Self {
        InternalEvent {
            topic: None,
            payload: SharedElement::new(payload),
            producer: None,
            origin: None,
        }
    }

    /// An event on a topic.
    pub fn on_topic(topic: &str, payload: Element) -> Self {
        InternalEvent {
            topic: TopicPath::parse(topic),
            payload: SharedElement::new(payload),
            producer: None,
            origin: None,
        }
    }

    /// The payload as a plain element (filter evaluation, tests).
    pub fn payload_element(&self) -> &Element {
        self.payload.element()
    }

    /// Builder-style producer reference.
    pub fn from_producer(mut self, producer: EndpointReference) -> Self {
        self.producer = Some(producer);
        self
    }

    /// Builder-style origin dialect.
    pub fn with_origin(mut self, origin: SpecDialect) -> Self {
        self.origin = Some(origin);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let e = InternalEvent::raw(Element::local("x"));
        assert!(e.topic.is_none());
        assert_eq!(e.payload_element().name.local, "x");
        let e = InternalEvent::on_topic("a/b", Element::local("x"))
            .from_producer(EndpointReference::new("http://p"));
        assert_eq!(e.topic.unwrap().to_string(), "a/b");
        assert_eq!(e.producer.unwrap().address, "http://p");
    }

    #[test]
    fn bad_topic_is_none() {
        let e = InternalEvent::on_topic("", Element::local("x"));
        assert!(e.topic.is_none());
    }

    #[test]
    fn clone_shares_the_payload() {
        let e = InternalEvent::raw(Element::local("x"));
        let f = e.clone();
        assert!(Arc::ptr_eq(&e.payload, &f.payload));
        assert_eq!(e, f);
    }
}
