//! Consumer-native rendering of notifications.
//!
//! "When delivering notification messages, WS-Messenger makes sure that
//! notification messages follow the expected specifications of the
//! target event consumers" (§VII). This module is that guarantee: one
//! [`InternalEvent`] in, an envelope in the subscription's dialect out.

use crate::detect::SpecDialect;
use crate::event::InternalEvent;
use crate::registry::BrokerSubscription;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use wsm_addressing::EndpointReference;
use wsm_eventing::WseCodec;
use wsm_notification::{NotificationMessage, SharedNotificationMessage, WsnCodec};
use wsm_soap::Envelope;
use wsm_xml::{Element, SharedElement};

/// Namespace for broker-defined header extensions (the topic header on
/// WS-Eventing deliveries — §V.4(6): WSE "needs to place it in the SOAP
/// header if needed", the spec defining no body slot for it).
pub const WSM_NS: &str = "urn:ws-messenger:broker";

/// Per-publication render state, shared across the whole fan-out.
///
/// Two levels of reuse:
///
/// * The **payload subtree** — the only part of a notification that
///   grows with event size — is wrapped in one [`SharedElement`] whose
///   compact serialization is computed once and spliced into every
///   outgoing envelope, so a publication serializes its payload once
///   instead of once per subscriber.
/// * **Class templates** — the fragments a dialect adds around the
///   payload that do not depend on the individual subscriber (the WSE
///   topic header; the WSN `NotificationMessage` topic and producer
///   references) — are built once per `(spec version, raw-mode)`
///   equivalence class and cloned per subscriber.
///
/// The cache is `Sync`, so the parallel fan-out workers can render
/// against it concurrently.
pub struct RenderCache {
    payload: Arc<SharedElement>,
    classes: Mutex<HashMap<(SpecDialect, bool), ClassTemplate>>,
}

#[derive(Clone)]
enum ClassTemplate {
    /// WSE raw delivery: shared body plus an optional topic header.
    Wse { topic_header: Option<Element> },
    /// WSN `UseRaw` delivery: shared body, nothing else.
    WsnRaw,
    /// WSN wrapped delivery: the `NotificationMessage` minus its
    /// per-subscriber `SubscriptionReference`.
    WsnNotify { message: SharedNotificationMessage },
}

impl RenderCache {
    /// A cache for one publication of `event`.
    pub fn new(event: &InternalEvent) -> Self {
        RenderCache {
            payload: SharedElement::new(event.payload.clone()),
            classes: Mutex::new(HashMap::new()),
        }
    }

    /// The shared payload subtree.
    pub fn payload(&self) -> &Arc<SharedElement> {
        &self.payload
    }

    /// How many equivalence classes have been rendered so far.
    pub fn class_count(&self) -> usize {
        self.classes.lock().len()
    }

    fn template(
        &self,
        event: &InternalEvent,
        broker_uri: &str,
        spec: SpecDialect,
        use_raw: bool,
    ) -> ClassTemplate {
        self.classes
            .lock()
            .entry((spec, use_raw))
            .or_insert_with(|| match spec {
                SpecDialect::Wse(_) => ClassTemplate::Wse {
                    topic_header: event
                        .topic
                        .as_ref()
                        .map(|t| Element::ns(WSM_NS, "Topic", "wsm").with_text(t.to_string())),
                },
                SpecDialect::Wsn(_) if use_raw => ClassTemplate::WsnRaw,
                SpecDialect::Wsn(_) => ClassTemplate::WsnNotify {
                    message: SharedNotificationMessage {
                        topic: event.topic.clone(),
                        producer: event
                            .producer
                            .clone()
                            .or_else(|| Some(EndpointReference::new(broker_uri.to_string()))),
                        subscription: None,
                        message: Arc::clone(&self.payload),
                    },
                },
            })
            .clone()
    }
}

/// Render one event for one subscription through the per-publication
/// cache. Produces envelopes byte-identical to [`render_notification`].
pub fn render_notification_cached(
    cache: &RenderCache,
    sub: &BrokerSubscription,
    event: &InternalEvent,
    broker_uri: &str,
    subscription_epr: &EndpointReference,
) -> Envelope {
    match (
        sub.spec,
        cache.template(event, broker_uri, sub.spec, sub.use_raw),
    ) {
        (SpecDialect::Wse(v), ClassTemplate::Wse { topic_header }) => {
            let mut env = WseCodec::new(v).notification_shared(&sub.consumer, cache.payload());
            if let Some(h) = topic_header {
                env.add_header(h);
            }
            env
        }
        (SpecDialect::Wsn(v), ClassTemplate::WsnRaw) => {
            WsnCodec::new(v).raw_notification_shared(&sub.consumer, cache.payload())
        }
        (SpecDialect::Wsn(v), ClassTemplate::WsnNotify { mut message }) => {
            message.subscription = Some(subscription_epr.clone());
            WsnCodec::new(v).notify_shared(&sub.consumer, &[message])
        }
        // A template is only ever built for its own dialect's key.
        _ => unreachable!("class template matches its dialect"),
    }
}

/// Render one event for one subscription.
pub fn render_notification(
    sub: &BrokerSubscription,
    event: &InternalEvent,
    broker_uri: &str,
    subscription_epr: &EndpointReference,
) -> Envelope {
    match sub.spec {
        SpecDialect::Wse(v) => {
            let codec = WseCodec::new(v);
            let mut env = codec.notification(&sub.consumer, &event.payload);
            // Topic rides in a SOAP header for WSE consumers.
            if let Some(t) = &event.topic {
                env.add_header(Element::ns(WSM_NS, "Topic", "wsm").with_text(t.to_string()));
            }
            env
        }
        SpecDialect::Wsn(v) => {
            let codec = WsnCodec::new(v);
            if sub.use_raw {
                codec.raw_notification(&sub.consumer, &event.payload)
            } else {
                let msg = NotificationMessage {
                    topic: event.topic.clone(),
                    producer: event
                        .producer
                        .clone()
                        .or_else(|| Some(EndpointReference::new(broker_uri.to_string()))),
                    subscription: Some(subscription_epr.clone()),
                    message: event.payload.clone(),
                };
                codec.notify(&sub.consumer, &[msg])
            }
        }
    }
}

/// Render a wrapped batch for one subscription.
pub fn render_batch(
    sub: &BrokerSubscription,
    payloads: &[Element],
    broker_uri: &str,
    subscription_epr: &EndpointReference,
) -> Envelope {
    match sub.spec {
        SpecDialect::Wse(v) => WseCodec::new(v).wrapped_notification(&sub.consumer, payloads),
        SpecDialect::Wsn(v) => {
            let codec = WsnCodec::new(v);
            let msgs: Vec<NotificationMessage> = payloads
                .iter()
                .map(|p| NotificationMessage {
                    topic: None,
                    producer: Some(EndpointReference::new(broker_uri.to_string())),
                    subscription: Some(subscription_epr.clone()),
                    message: p.clone(),
                })
                .collect();
            codec.notify(&sub.consumer, &msgs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{BrokerDeliveryMode, UnifiedFilters};
    use wsm_eventing::WseVersion;
    use wsm_notification::WsnVersion;

    fn sub(spec: SpecDialect, use_raw: bool) -> BrokerSubscription {
        BrokerSubscription {
            id: "wsm-1".into(),
            spec,
            consumer: EndpointReference::new("http://c"),
            end_to: None,
            filters: UnifiedFilters::default(),
            mode: BrokerDeliveryMode::Push,
            use_raw,
            paused: false,
            expires_at_ms: None,
            queue: Default::default(),
            wrap_buffer: Vec::new(),
        }
    }

    fn ev() -> InternalEvent {
        InternalEvent::on_topic("storms", Element::local("alert").with_text("x"))
    }

    fn mgr() -> EndpointReference {
        EndpointReference::new("http://b/subscriptions")
    }

    #[test]
    fn wse_render_is_raw_with_topic_header() {
        let env = render_notification(
            &sub(SpecDialect::Wse(WseVersion::Aug2004), false),
            &ev(),
            "http://b",
            &mgr(),
        );
        assert_eq!(env.body().unwrap().name.local, "alert", "raw body");
        let topic = env.header(WSM_NS, "Topic").unwrap();
        assert_eq!(topic.text(), "storms");
    }

    #[test]
    fn wsn_render_is_wrapped_notify() {
        let env = render_notification(
            &sub(SpecDialect::Wsn(WsnVersion::V1_3), false),
            &ev(),
            "http://b",
            &mgr(),
        );
        let body = env.body().unwrap();
        assert_eq!(body.name.local, "Notify");
        let parsed = WsnCodec::new(WsnVersion::V1_3).parse_notify(&env).unwrap();
        assert_eq!(parsed[0].topic.as_ref().unwrap().to_string(), "storms");
        assert_eq!(parsed[0].producer.as_ref().unwrap().address, "http://b");
    }

    #[test]
    fn wsn_raw_render() {
        let env = render_notification(
            &sub(SpecDialect::Wsn(WsnVersion::V1_3), true),
            &ev(),
            "http://b",
            &mgr(),
        );
        assert_eq!(env.body().unwrap().name.local, "alert");
    }

    #[test]
    fn batches_per_dialect() {
        let payloads = vec![Element::local("a"), Element::local("b")];
        let wse = render_batch(
            &sub(SpecDialect::Wse(WseVersion::Aug2004), false),
            &payloads,
            "http://b",
            &mgr(),
        );
        assert_eq!(wse.body().unwrap().name.local, "Notifications");
        assert_eq!(wse.body().unwrap().element_count(), 2);
        let wsn = render_batch(
            &sub(SpecDialect::Wsn(WsnVersion::V1_3), false),
            &payloads,
            "http://b",
            &mgr(),
        );
        assert_eq!(wsn.body().unwrap().name.local, "Notify");
        assert_eq!(wsn.body().unwrap().element_count(), 2);
    }

    #[test]
    fn cached_render_is_byte_identical_per_class() {
        let event = ev();
        let cache = RenderCache::new(&event);
        let mut shapes: Vec<(SpecDialect, bool)> =
            SpecDialect::ALL.iter().map(|d| (*d, false)).collect();
        shapes.extend(
            SpecDialect::ALL
                .iter()
                .filter(|d| matches!(d, SpecDialect::Wsn(_)))
                .map(|d| (*d, true)),
        );
        let classes = shapes.len();
        for (spec, raw) in shapes {
            let s = sub(spec, raw);
            let plain = render_notification(&s, &event, "http://b", &mgr());
            let cached = render_notification_cached(&cache, &s, &event, "http://b", &mgr());
            assert_eq!(cached.to_xml(), plain.to_xml(), "{spec:?} raw={raw}");
            // A second subscriber of the same class reuses the template.
            let again = render_notification_cached(&cache, &s, &event, "http://b", &mgr());
            assert_eq!(again.to_xml(), plain.to_xml());
        }
        assert_eq!(cache.class_count(), classes);
    }

    #[test]
    fn original_producer_preserved_through_mediation() {
        let event = ev().from_producer(EndpointReference::new("http://origin"));
        let env = render_notification(
            &sub(SpecDialect::Wsn(WsnVersion::V1_3), false),
            &event,
            "http://b",
            &mgr(),
        );
        let parsed = WsnCodec::new(WsnVersion::V1_3).parse_notify(&env).unwrap();
        assert_eq!(
            parsed[0].producer.as_ref().unwrap().address,
            "http://origin"
        );
    }
}
