//! Consumer-native rendering of notifications.
//!
//! "When delivering notification messages, WS-Messenger makes sure that
//! notification messages follow the expected specifications of the
//! target event consumers" (§VII). This module is that guarantee: one
//! [`InternalEvent`] in, an envelope in the subscription's dialect out.

use crate::detect::SpecDialect;
use crate::event::InternalEvent;
use crate::registry::BrokerSubscription;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use wsm_addressing::EndpointReference;
use wsm_eventing::WseCodec;
use wsm_notification::{NotificationMessage, SharedNotificationMessage, WsnCodec};
use wsm_soap::Envelope;
use wsm_xml::{Element, Node, SharedElement};

/// Namespace for broker-defined header extensions (the topic header on
/// WS-Eventing deliveries — §V.4(6): WSE "needs to place it in the SOAP
/// header if needed", the spec defining no body slot for it).
pub const WSM_NS: &str = "urn:ws-messenger:broker";

/// Per-publication render state, shared across the whole fan-out.
///
/// Two levels of reuse:
///
/// * The **payload subtree** — the only part of a notification that
///   grows with event size — is wrapped in one [`SharedElement`] whose
///   compact serialization is computed once and spliced into every
///   outgoing envelope, so a publication serializes its payload once
///   instead of once per subscriber.
/// * **Prototype envelopes** — a complete envelope is built once per
///   `(spec version, raw-mode)` equivalence class, addressed to a
///   placeholder consumer. Per subscriber the prototype is cloned
///   (interned names make that Arc bumps, not string copies) and only
///   the subscriber-dependent parts are patched in: the `wsa:To` text,
///   the consumer EPR's echoed reference data, and — for wrapped WSN —
///   the `SubscriptionReference` inside the `NotificationMessage`.
///
/// The cache is `Sync`, so the parallel fan-out workers can render
/// against it concurrently.
pub struct RenderCache {
    payload: Arc<SharedElement>,
    classes: Mutex<HashMap<(SpecDialect, bool), ClassTemplate>>,
}

/// One equivalence class's prebuilt envelope plus the patch points.
#[derive(Clone)]
struct ClassTemplate {
    /// The full envelope, addressed to an empty placeholder consumer
    /// (blank `wsa:To`, no echoed reference data, and for wrapped WSN
    /// no `SubscriptionReference`).
    proto: Envelope,
    /// Header index where a consumer's echoed reference data belongs:
    /// after the MAPs (`To`, `Action`), before extension headers such
    /// as the WSE topic header.
    echo_at: usize,
    /// Wrapped WSN only: prototype `SubscriptionReference` addressing
    /// the subscription manager, its identifier element still empty.
    /// Per subscriber it is cloned, the id text patched in, and the
    /// result spliced into the `NotificationMessage` — replacing a
    /// per-subscriber EPR construction and serialization.
    sub_ref: Option<Element>,
}

impl RenderCache {
    /// A cache for one publication of `event`.
    ///
    /// O(1): the event already carries its payload as a shared subtree,
    /// so the cache takes a reference instead of deep-cloning the tree
    /// (which made cache construction O(payload size) in the seed).
    pub fn new(event: &InternalEvent) -> Self {
        RenderCache {
            payload: Arc::clone(&event.payload),
            classes: Mutex::new(HashMap::new()),
        }
    }

    /// The shared payload subtree.
    pub fn payload(&self) -> &Arc<SharedElement> {
        &self.payload
    }

    /// How many equivalence classes have been rendered so far.
    pub fn class_count(&self) -> usize {
        self.classes.lock().len()
    }

    fn template(
        &self,
        event: &InternalEvent,
        broker_uri: &str,
        manager_uri: &str,
        spec: SpecDialect,
        use_raw: bool,
    ) -> ClassTemplate {
        self.classes
            .lock()
            .entry((spec, use_raw))
            .or_insert_with(|| {
                let placeholder = EndpointReference::new("");
                match spec {
                    SpecDialect::Wse(v) => {
                        let mut proto =
                            WseCodec::new(v).notification_shared(&placeholder, &self.payload);
                        let echo_at = proto.headers().len();
                        if let Some(t) = &event.topic {
                            proto.add_header(
                                Element::ns(WSM_NS, "Topic", "wsm").with_text(t.to_string()),
                            );
                        }
                        ClassTemplate {
                            proto,
                            echo_at,
                            sub_ref: None,
                        }
                    }
                    SpecDialect::Wsn(v) if use_raw => {
                        let proto =
                            WsnCodec::new(v).raw_notification_shared(&placeholder, &self.payload);
                        let echo_at = proto.headers().len();
                        ClassTemplate {
                            proto,
                            echo_at,
                            sub_ref: None,
                        }
                    }
                    SpecDialect::Wsn(v) => {
                        let message = SharedNotificationMessage {
                            topic: event.topic.clone(),
                            producer: event
                                .producer
                                .clone()
                                .or_else(|| Some(EndpointReference::new(broker_uri.to_string()))),
                            subscription: None,
                            message: Arc::clone(&self.payload),
                        };
                        let proto = WsnCodec::new(v).notify_shared(&placeholder, &[message]);
                        let echo_at = proto.headers().len();
                        ClassTemplate {
                            proto,
                            echo_at,
                            sub_ref: Some(subscription_reference_proto(v, manager_uri)),
                        }
                    }
                }
            })
            .clone()
    }
}

/// The subscription-manager EPR the broker mints for subscription `id`
/// under a WSN dialect: the manager address plus the dialect's
/// subscription-identifier element in the WSA-version-appropriate
/// reference container.
pub fn wsn_subscription_epr(
    v: wsm_notification::WsnVersion,
    manager_uri: &str,
    id: &str,
) -> EndpointReference {
    EndpointReference::new(manager_uri.to_string()).with_reference(
        v.wsa(),
        Element::ns(
            v.ns(),
            wsm_notification::messages::SUBSCRIPTION_ID_LOCAL,
            "wsnt",
        )
        .with_text(id),
    )
}

/// The `SubscriptionReference` prototype for a class: identical to
/// [`WsnCodec::subscription_reference`] over [`wsn_subscription_epr`],
/// except the identifier element is still empty. Shape is fixed —
/// `[Address, <reference container>[identifier]]` — so the per-sub
/// patch can address the id slot by position.
fn subscription_reference_proto(v: wsm_notification::WsnVersion, manager_uri: &str) -> Element {
    let manager = EndpointReference::new(manager_uri.to_string()).with_reference(
        v.wsa(),
        Element::ns(
            v.ns(),
            wsm_notification::messages::SUBSCRIPTION_ID_LOCAL,
            "wsnt",
        ),
    );
    WsnCodec::new(v).subscription_reference(&manager)
}

/// Render one event for one subscription through the per-publication
/// cache. Produces envelopes byte-identical to [`render_notification`]
/// over the subscription-manager EPR the broker mints (see
/// [`wsn_subscription_epr`]).
///
/// Per subscriber this clones the class prototype and patches the three
/// subscriber-dependent spots — the `wsa:To` text, the consumer's
/// echoed reference data, and (wrapped WSN) the subscription id inside
/// the prototype `SubscriptionReference` — instead of rebuilding the
/// tree, so the per-subscriber cost no longer scales with envelope
/// size.
pub fn render_notification_cached(
    cache: &RenderCache,
    sub: &BrokerSubscription,
    event: &InternalEvent,
    broker_uri: &str,
    manager_uri: &str,
) -> Envelope {
    let t = cache.template(event, broker_uri, manager_uri, sub.spec, sub.use_raw);
    let mut env = t.proto;
    // Patch wsa:To — always the first header the MAPs applied.
    if let Some(to) = env.header_at_mut(0) {
        to.children.clear();
        to.push_text(sub.consumer.address.clone());
    }
    // Echo the consumer EPR's reference data after the MAPs, before any
    // extension headers (the WSE topic header), as the plain path does.
    for (at, item) in (t.echo_at..).zip(sub.consumer.all_reference_data()) {
        env.insert_header(at, item.clone());
    }
    if let Some(proto) = t.sub_ref {
        let mut sub_ref = proto;
        // Proto shape is [Address, <container>[identifier]]; write this
        // subscription's id into the identifier slot.
        if let Some(id_el) = sub_ref
            .children
            .get_mut(1)
            .and_then(Node::as_element_mut)
            .and_then(|c| c.children.get_mut(0).and_then(Node::as_element_mut))
        {
            id_el.push_text(sub.id.clone());
        }
        // Notify > NotificationMessage: the reference is its first
        // child, exactly where `notify_envelope` places it.
        if let Some(nm) = env
            .body_first_mut()
            .and_then(|b| b.children.iter_mut().find_map(Node::as_element_mut))
        {
            nm.children.insert(0, Node::Element(sub_ref));
        }
    }
    env
}

/// Render one event for one subscription.
pub fn render_notification(
    sub: &BrokerSubscription,
    event: &InternalEvent,
    broker_uri: &str,
    subscription_epr: &EndpointReference,
) -> Envelope {
    match sub.spec {
        SpecDialect::Wse(v) => {
            let codec = WseCodec::new(v);
            let mut env = codec.notification(&sub.consumer, event.payload_element());
            // Topic rides in a SOAP header for WSE consumers.
            if let Some(t) = &event.topic {
                env.add_header(Element::ns(WSM_NS, "Topic", "wsm").with_text(t.to_string()));
            }
            env
        }
        SpecDialect::Wsn(v) => {
            let codec = WsnCodec::new(v);
            if sub.use_raw {
                codec.raw_notification(&sub.consumer, event.payload_element())
            } else {
                let msg = NotificationMessage {
                    topic: event.topic.clone(),
                    producer: event
                        .producer
                        .clone()
                        .or_else(|| Some(EndpointReference::new(broker_uri.to_string()))),
                    subscription: Some(subscription_epr.clone()),
                    message: event.payload_element().clone(),
                };
                codec.notify(&sub.consumer, &[msg])
            }
        }
    }
}

/// Render a wrapped batch for one subscription. Payloads arrive as the
/// shared subtrees the wrap buffer accumulated, so each one splices its
/// cached serialization into the batch envelope.
pub fn render_batch(
    sub: &BrokerSubscription,
    payloads: &[Arc<SharedElement>],
    broker_uri: &str,
    subscription_epr: &EndpointReference,
) -> Envelope {
    match sub.spec {
        SpecDialect::Wse(v) => {
            WseCodec::new(v).wrapped_notification_shared(&sub.consumer, payloads)
        }
        SpecDialect::Wsn(v) => {
            let codec = WsnCodec::new(v);
            let msgs: Vec<SharedNotificationMessage> = payloads
                .iter()
                .map(|p| SharedNotificationMessage {
                    topic: None,
                    producer: Some(EndpointReference::new(broker_uri.to_string())),
                    subscription: Some(subscription_epr.clone()),
                    message: Arc::clone(p),
                })
                .collect();
            codec.notify_shared(&sub.consumer, &msgs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{BrokerDeliveryMode, UnifiedFilters};
    use wsm_eventing::WseVersion;
    use wsm_notification::WsnVersion;

    fn sub(spec: SpecDialect, use_raw: bool) -> BrokerSubscription {
        BrokerSubscription {
            id: "wsm-1".into(),
            spec,
            consumer: EndpointReference::new("http://c"),
            end_to: None,
            filters: UnifiedFilters::default(),
            mode: BrokerDeliveryMode::Push,
            use_raw,
        }
    }

    fn ev() -> InternalEvent {
        InternalEvent::on_topic("storms", Element::local("alert").with_text("x"))
    }

    fn mgr() -> EndpointReference {
        EndpointReference::new("http://b/subscriptions")
    }

    #[test]
    fn wse_render_is_raw_with_topic_header() {
        let env = render_notification(
            &sub(SpecDialect::Wse(WseVersion::Aug2004), false),
            &ev(),
            "http://b",
            &mgr(),
        );
        assert_eq!(env.body().unwrap().name.local, "alert", "raw body");
        let topic = env.header(WSM_NS, "Topic").unwrap();
        assert_eq!(topic.text(), "storms");
    }

    #[test]
    fn wsn_render_is_wrapped_notify() {
        let env = render_notification(
            &sub(SpecDialect::Wsn(WsnVersion::V1_3), false),
            &ev(),
            "http://b",
            &mgr(),
        );
        let body = env.body().unwrap();
        assert_eq!(body.name.local, "Notify");
        let parsed = WsnCodec::new(WsnVersion::V1_3).parse_notify(&env).unwrap();
        assert_eq!(parsed[0].topic.as_ref().unwrap().to_string(), "storms");
        assert_eq!(parsed[0].producer.as_ref().unwrap().address, "http://b");
    }

    #[test]
    fn wsn_raw_render() {
        let env = render_notification(
            &sub(SpecDialect::Wsn(WsnVersion::V1_3), true),
            &ev(),
            "http://b",
            &mgr(),
        );
        assert_eq!(env.body().unwrap().name.local, "alert");
    }

    #[test]
    fn batches_per_dialect() {
        let payloads = vec![
            SharedElement::new(Element::local("a")),
            SharedElement::new(Element::local("b")),
        ];
        let wse = render_batch(
            &sub(SpecDialect::Wse(WseVersion::Aug2004), false),
            &payloads,
            "http://b",
            &mgr(),
        );
        assert_eq!(wse.body().unwrap().name.local, "Notifications");
        assert_eq!(wse.body().unwrap().element_count(), 2);
        let wsn = render_batch(
            &sub(SpecDialect::Wsn(WsnVersion::V1_3), false),
            &payloads,
            "http://b",
            &mgr(),
        );
        assert_eq!(wsn.body().unwrap().name.local, "Notify");
        assert_eq!(wsn.body().unwrap().element_count(), 2);
    }

    #[test]
    fn cached_render_is_byte_identical_per_class() {
        let event = ev();
        let cache = RenderCache::new(&event);
        let mut shapes: Vec<(SpecDialect, bool)> =
            SpecDialect::ALL.iter().map(|d| (*d, false)).collect();
        shapes.extend(
            SpecDialect::ALL
                .iter()
                .filter(|d| matches!(d, SpecDialect::Wsn(_)))
                .map(|d| (*d, true)),
        );
        let classes = shapes.len();
        for (spec, raw) in shapes {
            let s = sub(spec, raw);
            // The plain path receives the same subscription-manager EPR
            // the cached path mints from (manager_uri, sub.id).
            let epr = match spec {
                SpecDialect::Wsn(v) => wsn_subscription_epr(v, "http://b/subscriptions", &s.id),
                SpecDialect::Wse(_) => mgr(),
            };
            let plain = render_notification(&s, &event, "http://b", &epr);
            let cached = render_notification_cached(
                &cache,
                &s,
                &event,
                "http://b",
                "http://b/subscriptions",
            );
            assert_eq!(cached.to_xml(), plain.to_xml(), "{spec:?} raw={raw}");
            // A second subscriber of the same class reuses the template.
            let again = render_notification_cached(
                &cache,
                &s,
                &event,
                "http://b",
                "http://b/subscriptions",
            );
            assert_eq!(again.to_xml(), plain.to_xml());
        }
        assert_eq!(cache.class_count(), classes);
    }

    #[test]
    fn cached_render_patches_distinct_subscription_ids() {
        let event = ev();
        let cache = RenderCache::new(&event);
        for id in ["wsm-1", "wsm-2"] {
            let mut s = sub(SpecDialect::Wsn(WsnVersion::V1_3), false);
            s.id = id.into();
            let env = render_notification_cached(&cache, &s, &event, "http://b", "http://b/subs");
            let parsed = WsnCodec::new(WsnVersion::V1_3).parse_notify(&env).unwrap();
            let epr = parsed[0].subscription.as_ref().unwrap();
            assert_eq!(epr.address, "http://b/subs");
            let item = epr
                .reference_item(
                    WsnVersion::V1_3.ns(),
                    wsm_notification::messages::SUBSCRIPTION_ID_LOCAL,
                )
                .expect("identifier patched in");
            assert_eq!(item.text(), id);
        }
    }

    #[test]
    fn original_producer_preserved_through_mediation() {
        let event = ev().from_producer(EndpointReference::new("http://origin"));
        let env = render_notification(
            &sub(SpecDialect::Wsn(WsnVersion::V1_3), false),
            &event,
            "http://b",
            &mgr(),
        );
        let parsed = WsnCodec::new(WsnVersion::V1_3).parse_notify(&env).unwrap();
        assert_eq!(
            parsed[0].producer.as_ref().unwrap().address,
            "http://origin"
        );
    }
}
