//! Deterministic chaos suite: seeded fault plans driving the
//! fault-tolerant delivery path end to end.
//!
//! Every scenario is keyed on `WSM_CHAOS_SEED` (default 42) and runs
//! entirely on the virtual clock with a single fan-out worker, so two
//! runs of the same binary produce byte-identical transport traces.
//! The CI chaos job runs this suite twice with `WSM_CHAOS_TRACE`
//! pointing at different files and diffs the exports.

use wsm_eventing::{EventSink, SubscribeRequest, Subscriber, WseVersion};
use wsm_messenger::render::WSM_NS;
use wsm_messenger::{FaultTolerance, MediationStats, WsMessenger};
use wsm_soap::{Envelope, SoapVersion};
use wsm_transport::{EndpointFaults, FaultPlan, Network};
use wsm_xml::Element;

/// The suite-wide seed: `WSM_CHAOS_SEED` or 42.
fn chaos_seed() -> u64 {
    std::env::var("WSM_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn event(seq: usize) -> Element {
    Element::local("reading").with_attr("seq", seq.to_string())
}

fn seqs_of(received: &[Element]) -> Vec<u64> {
    received
        .iter()
        .map(|e| e.attr("seq").expect("seq attr").parse().expect("numeric"))
        .collect()
}

/// A broker with fault tolerance on, one WSE push subscriber, and
/// sequential fan-out (deterministic trace order).
fn reliable_broker(net: &Network, seed: u64) -> (WsMessenger, EventSink) {
    let broker = WsMessenger::start(net, "http://broker");
    broker.set_fanout_workers(1);
    broker.set_fault_tolerance(Some(FaultTolerance {
        base_backoff_ms: 25,
        max_backoff_ms: 400,
        seed,
        ..FaultTolerance::default()
    }));
    let sink = EventSink::start(net, "http://sink", WseVersion::Aug2004);
    Subscriber::new(net, WseVersion::Aug2004)
        .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
        .expect("subscribe");
    (broker, sink)
}

/// The acceptance scenario: an endpoint dark for 30% of virtual time
/// (300ms out of every 1000ms), 200 sequentially published messages.
/// Every message must eventually arrive, exactly once, in order, with
/// the subscription never evicted.
#[test]
fn flapping_subscriber_receives_every_message_after_recovery() {
    let seed = chaos_seed();
    let net = Network::new();
    net.set_latency_ms(7);
    let (broker, sink) = reliable_broker(&net, seed);
    net.set_fault_plan(FaultPlan::seeded(seed).with_endpoint(
        "http://sink",
        EndpointFaults::new().with_flapping(1000, 300),
    ));

    const N: usize = 200;
    for i in 0..N {
        broker.publish_on("storms", &event(i));
        net.clock().advance_ms(13);
    }
    broker.drain_redeliveries(600_000);

    let seqs = seqs_of(&sink.received());
    assert_eq!(seqs.len(), N, "100% eventual delivery (>= the 99% bar)");
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "exactly once, in publication order"
    );
    assert_eq!(broker.subscription_count(), 1, "zero evictions");
    assert!(sink.ends().is_empty(), "no SubscriptionEnd sent");

    let stats = broker.stats();
    assert_eq!(stats.delivered_wse, N as u64);
    assert_eq!(stats.failed, 0, "nothing dead-lettered");
    assert_eq!(stats.dead_lettered, 0);
    assert!(
        stats.redelivered > 0,
        "the flap forced redeliveries: {stats:?}"
    );
    assert_eq!(broker.redelivery_depth(), 0, "queue fully drained");
    assert_eq!(broker.dead_letter_count(), 0);
}

/// One full chaos run over a two-subscriber scenario mixing every
/// injection kind; returns the transport trace and the final stats.
fn mixed_chaos_run(seed: u64) -> (String, MediationStats) {
    let net = Network::new();
    net.set_latency_ms(5);
    let (broker, flappy) = reliable_broker(&net, seed);
    let lossy = EventSink::start(&net, "http://lossy", WseVersion::Jan2004);
    Subscriber::new(&net, WseVersion::Jan2004)
        .subscribe(broker.uri(), SubscribeRequest::push(lossy.epr()))
        .expect("subscribe lossy");
    net.set_fault_plan(
        FaultPlan::seeded(seed)
            .with_endpoint(
                "http://sink",
                EndpointFaults::new()
                    .with_flapping(800, 240)
                    .with_latency_spikes(90, 3),
            )
            .with_endpoint(
                "http://lossy",
                EndpointFaults::new().with_drop_rate(0.3).with_fault_next(2),
            ),
    );
    for i in 0..60 {
        broker.publish_on("storms", &event(i));
        net.clock().advance_ms(11);
    }
    broker.drain_redeliveries(600_000);
    assert_eq!(flappy.received().len(), 60);
    assert_eq!(lossy.received().len(), 60);
    (net.trace_jsonl(), broker.stats())
}

/// The same seed must reproduce the same trace bit for bit — the
/// property the CI chaos job checks across two whole processes by
/// diffing `WSM_CHAOS_TRACE` exports.
#[test]
fn chaos_trace_is_deterministic() {
    let seed = chaos_seed();
    let (trace_a, stats_a) = mixed_chaos_run(seed);
    let (trace_b, stats_b) = mixed_chaos_run(seed);
    assert_eq!(trace_a, trace_b, "same seed, byte-identical trace");
    assert_eq!(stats_a, stats_b, "same seed, same counters");
    assert!(!trace_a.is_empty());
    if let Ok(path) = std::env::var("WSM_CHAOS_TRACE") {
        std::fs::write(&path, &trace_a).expect("export chaos trace");
    }
}

/// Poison responses burn the small poison budget, land the message in
/// the dead-letter store without evicting the subscriber, and the
/// store is queryable and drainable over the broker-extension SOAP
/// operations.
#[test]
fn poison_messages_dead_letter_and_redeliver_over_soap() {
    let seed = chaos_seed();
    let net = Network::new();
    net.set_latency_ms(3);
    let broker = WsMessenger::start(&net, "http://broker");
    broker.set_fanout_workers(1);
    broker.set_fault_tolerance(Some(FaultTolerance {
        base_backoff_ms: 10,
        poison_budget: 2,
        seed,
        ..FaultTolerance::default()
    }));
    let sink = EventSink::start(&net, "http://sink", WseVersion::Aug2004);
    Subscriber::new(&net, WseVersion::Aug2004)
        .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
        .expect("subscribe");

    // The endpoint answers the next several deliveries with SOAP
    // faults: two strikes exhaust the poison budget.
    net.fault_next("http://sink", 8);
    broker.publish_on("storms", &event(7));
    broker.drain_redeliveries(600_000);

    assert!(sink.received().is_empty());
    assert_eq!(broker.dead_letter_count(), 1);
    assert_eq!(broker.subscription_count(), 1, "poison never evicts");
    let stats = broker.stats();
    assert_eq!(stats.dead_lettered, 1);
    assert_eq!(stats.failed, 1);

    // GetDeadLetters over SOAP: the letter carries its provenance and
    // the undeliverable payload itself.
    let resp = net
        .request(
            "http://broker",
            Envelope::new(SoapVersion::V11).with_body(Element::ns(WSM_NS, "GetDeadLetters", "wsm")),
        )
        .expect("GetDeadLetters");
    let body = resp.body().expect("response body");
    let letters: Vec<&Element> = body
        .children
        .iter()
        .filter_map(|c| c.as_element())
        .filter(|e| e.name.is(WSM_NS, "DeadLetter"))
        .collect();
    assert_eq!(letters.len(), 1);
    let dl = letters[0];
    assert_eq!(dl.attr("Address"), Some("http://sink"));
    assert!(dl.attr("Reason").unwrap().contains("poison"));
    assert!(
        dl.children.iter().any(|c| c.as_element().is_some()),
        "the dead letter embeds the undeliverable payload"
    );

    // Heal the endpoint, requeue the dead letter over SOAP, drain: the
    // message finally arrives and the store empties.
    net.set_fault_plan(FaultPlan::seeded(seed));
    let resp = net
        .request(
            "http://broker",
            Envelope::new(SoapVersion::V11).with_body(Element::ns(
                WSM_NS,
                "RedeliverDeadLetters",
                "wsm",
            )),
        )
        .expect("RedeliverDeadLetters");
    assert_eq!(
        resp.body().and_then(|b| b.attr("Count")),
        Some("1"),
        "one letter requeued"
    );
    broker.drain_redeliveries(600_000);
    assert_eq!(broker.dead_letter_count(), 0);
    let seqs = seqs_of(&sink.received());
    assert_eq!(seqs, vec![7], "the poisoned message finally arrived");
}

/// Breaker, queue-depth, dead-letter, and backoff instruments all
/// surface through the metrics exposition.
#[cfg(feature = "obs")]
#[test]
fn reliability_metrics_appear_in_exposition() {
    let seed = chaos_seed();
    let net = Network::new();
    net.set_latency_ms(3);
    let (broker, sink) = reliable_broker(&net, seed);
    net.drop_next("http://sink", 4);
    broker.publish_on("storms", &event(0));
    assert!(broker.redelivery_depth() > 0, "first attempt was dropped");

    let text = broker.metrics_text();
    for metric in [
        "wsm_redelivery_depth",
        "wsm_breakers_open",
        "wsm_dead_letters_total",
        "wsm_backoff_delay_ms",
    ] {
        assert!(text.contains(metric), "{metric} missing from:\n{text}");
    }
    assert!(
        text.contains("wsm_redelivery_depth 1"),
        "depth gauge reflects the queued message:\n{text}"
    );

    broker.drain_redeliveries(600_000);
    assert_eq!(seqs_of(&sink.received()), vec![0]);
    assert!(broker.metrics_text().contains("wsm_redelivery_depth 0"));
}

mod ordering {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Under any seeded loss profile, every message is delivered
        /// exactly once and per-subscriber order survives redelivery.
        #[test]
        fn redelivery_preserves_order_under_seeded_fault_plans(
            seed in 0u64..1_000_000,
            drop_pct in 0u32..60,
            n in 10usize..40,
        ) {
            let net = Network::new();
            net.set_latency_ms(3);
            let (broker, sink) = reliable_broker(&net, seed);
            net.set_fault_plan(FaultPlan::seeded(seed).with_endpoint(
                "http://sink",
                EndpointFaults::new().with_drop_rate(drop_pct as f64 / 100.0),
            ));
            for i in 0..n {
                broker.publish_on("storms", &event(i));
                net.clock().advance_ms(5);
            }
            broker.drain_redeliveries(600_000);
            let seqs = seqs_of(&sink.received());
            prop_assert_eq!(seqs.len(), n, "every message delivered");
            prop_assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "no duplicates, order preserved: {:?}",
                seqs
            );
            prop_assert_eq!(broker.subscription_count(), 1);
            prop_assert_eq!(broker.stats().failed, 0);
        }
    }
}

/// Satellite: engine drain/shutdown under the sharded handoff. A
/// seeded churn thread unsubscribes consumers and silently kills their
/// endpoints while a publisher drives the staged engine (4 workers,
/// sharded dispatch forced) — every in-flight (event, subscriber)
/// delivery must still reach exactly one terminal `Resolve` outcome:
/// delivered, dead-lettered (endpoint gone), or expired (subscription
/// torn down with messages pending). A lost span or a deadlocked
/// worker fails (or hangs) this test; the CI chaos job runs it under a
/// job timeout.
#[test]
fn sharded_churn_resolves_every_inflight_delivery() {
    const SINKS: usize = 12;
    const EVENTS: usize = 40;
    let seed = chaos_seed();
    let net = Network::new();
    let broker = WsMessenger::start(&net, "http://broker");
    broker.set_fanout_workers(4);
    broker.set_dispatch_mode(wsm_messenger::DispatchMode::Sharded);
    broker.set_fault_tolerance(Some(FaultTolerance {
        base_backoff_ms: 20,
        max_backoff_ms: 200,
        max_redeliveries: 3,
        seed,
        ..FaultTolerance::default()
    }));
    // Real per-send time so the churn genuinely lands mid-fan-out.
    net.set_send_delay_us(100);

    let subscriber = Subscriber::new(&net, WseVersion::Aug2004);
    let mut sinks = Vec::new();
    let mut handles = Vec::new();
    for i in 0..SINKS {
        let uri = format!("http://churn-sink-{i}");
        let sink = EventSink::start(&net, &uri, WseVersion::Aug2004);
        let handle = subscriber
            .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
            .expect("subscribe");
        sinks.push(sink);
        handles.push((handle, uri));
    }

    let publisher = {
        let broker = broker.clone();
        let net = net.clone();
        std::thread::spawn(move || {
            for i in 0..EVENTS {
                broker.publish_on("storms", &event(i));
                net.clock().advance_ms(7);
            }
        })
    };
    // Seeded LCG decides each victim's fate: unsubscribe (clean
    // teardown → pending deliveries expire) or endpoint vanishing
    // without unsubscribing (dead consumer → dead-letter path).
    let churn = {
        let net = net.clone();
        let subscriber = Subscriber::new(&net, WseVersion::Aug2004);
        std::thread::spawn(move || {
            let mut rng = seed.wrapping_mul(2).wrapping_add(1);
            let mut step = || {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (rng >> 33) as usize
            };
            for (k, (handle, uri)) in handles.into_iter().enumerate() {
                std::thread::sleep(std::time::Duration::from_micros(400));
                if k >= SINKS / 2 {
                    continue; // half the consumers stay healthy
                }
                if step() % 3 == 0 {
                    net.unregister(&uri); // dies silently, stays subscribed
                } else {
                    subscriber.unsubscribe(&handle).expect("unsubscribe");
                }
            }
        })
    };
    publisher.join().expect("publisher thread");
    churn.join().expect("churn thread");
    broker.drain_redeliveries(600_000);
    net.set_send_delay_us(0);

    // Healthy consumers saw every event exactly once, in order.
    for sink in &sinks[SINKS / 2..] {
        let seqs = seqs_of(&sink.received());
        assert_eq!(seqs.len(), EVENTS, "healthy consumer got every event");
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "in order, no dupes");
    }

    #[cfg(feature = "obs")]
    {
        let snap = broker.obs_snapshot();
        assert_eq!(snap.spans_evicted, 0, "ring large enough for the run");
        let stories = broker.delivery_stories();
        assert!(!stories.is_empty());
        let unresolved: Vec<_> = stories
            .iter()
            .filter(|s| s.outcome.is_none())
            .map(|s| (s.seq, s.subscriber.clone()))
            .collect();
        assert!(
            unresolved.is_empty(),
            "every in-flight delivery reached a terminal outcome, missing: {unresolved:?}"
        );
        assert_eq!(
            stories.len() as u64,
            snap.outcome_delivered + snap.outcome_dead_lettered + snap.outcome_expired,
            "outcome counters agree with reconstructed stories"
        );
    }
}
