//! Property tests on the mediation broker: delivery counting, filter
//! semantics and payload fidelity under generated workloads.

use proptest::prelude::*;
use wsm_eventing::{EventSink, Filter, SubscribeRequest, Subscriber, WseVersion};
use wsm_messenger::WsMessenger;
use wsm_notification::{
    NotificationConsumer, WsnClient, WsnFilter, WsnSubscribeRequest, WsnVersion,
};
use wsm_transport::Network;
use wsm_xml::Element;

fn event(sev: u32) -> Element {
    Element::local("event").with_attr("sev", sev.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// For any workload, each consumer receives exactly the events its
    /// filter admits, in publication order, with payloads intact.
    #[test]
    fn deliveries_match_oracle(
        sevs in prop::collection::vec(0u32..10, 1..30),
        wse_threshold in 0u32..10,
        topics in prop::collection::vec(prop_oneof![Just("a"), Just("b")], 1..30),
    ) {
        let n = sevs.len().min(topics.len());
        let net = Network::new();
        let broker = WsMessenger::start(&net, "http://broker");

        // WSE consumer with a content filter.
        let wse_sink = EventSink::start(&net, "http://wse", WseVersion::Aug2004);
        Subscriber::new(&net, WseVersion::Aug2004)
            .subscribe(
                broker.uri(),
                SubscribeRequest::push(wse_sink.epr())
                    .with_filter(Filter::xpath(format!("/event[@sev > {wse_threshold}]"))),
            )
            .unwrap();
        // WSN consumer with a topic filter on `a`.
        let wsn_consumer = NotificationConsumer::start(&net, "http://wsn", WsnVersion::V1_3);
        WsnClient::new(&net, WsnVersion::V1_3)
            .subscribe(
                broker.uri(),
                &WsnSubscribeRequest::new(wsn_consumer.epr()).with_filter(WsnFilter::topic("a")),
            )
            .unwrap();

        let mut expect_wse: Vec<u32> = Vec::new();
        let mut expect_wsn: Vec<u32> = Vec::new();
        for i in 0..n {
            broker.publish_on(topics[i], &event(sevs[i]));
            if sevs[i] > wse_threshold {
                expect_wse.push(sevs[i]);
            }
            if topics[i] == "a" {
                expect_wsn.push(sevs[i]);
            }
        }

        let got_wse: Vec<u32> = wse_sink
            .received()
            .iter()
            .map(|e| e.attr("sev").unwrap().parse().unwrap())
            .collect();
        prop_assert_eq!(got_wse, expect_wse, "WSE oracle mismatch");
        let got_wsn: Vec<u32> = wsn_consumer
            .notifications()
            .iter()
            .map(|m| m.message.attr("sev").unwrap().parse().unwrap())
            .collect();
        prop_assert_eq!(got_wsn, expect_wsn, "WSN oracle mismatch");

        // Stats bookkeeping is exact.
        let stats = broker.stats();
        prop_assert_eq!(stats.published as usize, n);
        prop_assert_eq!(
            stats.delivered_wse as usize + stats.delivered_wsn as usize,
            wse_sink.received().len() + wsn_consumer.notifications().len()
        );
    }

    /// Pause windows lose exactly the events published inside them.
    #[test]
    fn pause_window_is_exact(pre in 0usize..6, during in 0usize..6, post in 0usize..6) {
        let net = Network::new();
        let broker = WsMessenger::start(&net, "http://broker");
        let consumer = NotificationConsumer::start(&net, "http://c", WsnVersion::V1_3);
        let client = WsnClient::new(&net, WsnVersion::V1_3);
        let h = client
            .subscribe(broker.uri(), &WsnSubscribeRequest::new(consumer.epr()))
            .unwrap();
        for i in 0..pre {
            broker.publish_raw(&event(i as u32));
        }
        client.pause(&h).unwrap();
        for i in 0..during {
            broker.publish_raw(&event(100 + i as u32));
        }
        client.resume(&h).unwrap();
        for i in 0..post {
            broker.publish_raw(&event(200 + i as u32));
        }
        let got = consumer.notifications();
        prop_assert_eq!(got.len(), pre + post);
        let none_from_pause_window = got.iter().all(|m| {
            let sev: u32 = m.message.attr("sev").unwrap().parse().unwrap();
            !(100..200).contains(&sev)
        });
        prop_assert!(none_from_pause_window);
    }

    /// Expiration is exact on the virtual clock: events at or after the
    /// expiry instant are not delivered.
    #[test]
    fn expiry_boundary(lease_ms in 1u64..1000, steps in prop::collection::vec(1u64..300, 1..8)) {
        let net = Network::new();
        let broker = WsMessenger::start(&net, "http://broker");
        let sink = EventSink::start(&net, "http://s", WseVersion::Aug2004);
        Subscriber::new(&net, WseVersion::Aug2004)
            .subscribe(
                broker.uri(),
                SubscribeRequest::push(sink.epr())
                    .with_expires(wsm_eventing::Expires::Duration(lease_ms)),
            )
            .unwrap();
        let mut now = 0u64;
        let mut expect = 0usize;
        for step in steps {
            net.clock().advance_ms(step);
            now += step;
            if now < lease_ms {
                expect += 1;
            }
            broker.publish_raw(&event(1));
        }
        prop_assert_eq!(sink.received().len(), expect);
    }
}
