//! The parallel delivery engine under concurrent load: publisher
//! threads racing subscribe/unsubscribe/expiry churn must lose no
//! deliveries, duplicate none, keep each publisher's events in order at
//! every subscriber, and keep `MediationStats` exact.

use std::thread;
use wsm_eventing::{EventSink, Expires, SubscribeRequest, Subscriber, WseVersion};
use wsm_messenger::WsMessenger;
use wsm_notification::{
    NotificationConsumer, WsnClient, WsnFilter, WsnSubscribeRequest, WsnVersion,
};
use wsm_transport::Network;
use wsm_xml::Element;

const PUBLISHERS: usize = 4;
const EVENTS_PER_PUBLISHER: usize = 100;

fn event(publisher: usize, seq: usize) -> Element {
    Element::local("e")
        .with_attr("t", publisher.to_string())
        .with_attr("n", seq.to_string())
}

/// Per-publisher sequence numbers in `payloads` must each be strictly
/// increasing — the per-subscriber ordering guarantee.
fn assert_publisher_order(payloads: &[Element], who: &str) {
    let mut last = [-1i64; PUBLISHERS];
    for p in payloads {
        let t: usize = p.attr("t").unwrap().parse().unwrap();
        let n: i64 = p.attr("n").unwrap().parse().unwrap();
        assert!(
            n > last[t],
            "{who}: publisher {t} went backwards ({n} after {})",
            last[t]
        );
        last[t] = n;
    }
}

#[test]
fn concurrent_publish_with_churn_keeps_exact_accounting() {
    let net = Network::new();
    let broker = WsMessenger::start(&net, "http://broker");

    // Stable consumers, half per dialect family, all seeing every event.
    let wse_sinks: Vec<EventSink> = (0..4)
        .map(|i| {
            let sink = EventSink::start(
                &net,
                format!("http://wse-{i}").as_str(),
                WseVersion::Aug2004,
            );
            Subscriber::new(&net, WseVersion::Aug2004)
                .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
                .unwrap();
            sink
        })
        .collect();
    let wsn_consumers: Vec<NotificationConsumer> = (0..4)
        .map(|i| {
            let consumer = NotificationConsumer::start(
                &net,
                format!("http://wsn-{i}").as_str(),
                WsnVersion::V1_3,
            );
            WsnClient::new(&net, WsnVersion::V1_3)
                .subscribe(
                    broker.uri(),
                    &WsnSubscribeRequest::new(consumer.epr())
                        .with_filter(WsnFilter::topic("storms")),
                )
                .unwrap();
            consumer
        })
        .collect();

    let publishers: Vec<_> = (0..PUBLISHERS)
        .map(|t| {
            let broker = broker.clone();
            thread::spawn(move || {
                for n in 0..EVENTS_PER_PUBLISHER {
                    broker.publish_on("storms", &event(t, n));
                }
            })
        })
        .collect();

    // Churn: short-lived subscriptions appearing, vanishing (explicit
    // unsubscribe) and expiring (already-past Expires swept mid-run),
    // while the publishers hammer the broker.
    let churn = {
        let net = net.clone();
        let broker = broker.clone();
        thread::spawn(move || {
            let subscriber = Subscriber::new(&net, WseVersion::Aug2004);
            let mut churn_sinks = Vec::new();
            for i in 0..24 {
                let sink = EventSink::start(
                    &net,
                    format!("http://churn-{i}").as_str(),
                    WseVersion::Aug2004,
                );
                let expires = if i % 3 == 0 {
                    Some(Expires::At(net.clock().now_ms()))
                } else {
                    None
                };
                let mut req = SubscribeRequest::push(sink.epr());
                if let Some(e) = expires {
                    req = req.with_expires(e);
                }
                let handle = subscriber.subscribe(broker.uri(), req).unwrap();
                if expires.is_none() {
                    subscriber.unsubscribe(&handle).unwrap();
                }
                churn_sinks.push(sink);
            }
            churn_sinks
        })
    };

    for p in publishers {
        p.join().unwrap();
    }
    let churn_sinks = churn.join().unwrap();

    // Any manager operation sweeps expired subscriptions, so the final
    // registry census below sees only the stable set.
    {
        let subscriber = Subscriber::new(&net, WseVersion::Aug2004);
        let sink = EventSink::start(&net, "http://sweeper", WseVersion::Aug2004);
        let handle = subscriber
            .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
            .unwrap();
        subscriber.unsubscribe(&handle).unwrap();
    }

    let total = (PUBLISHERS * EVENTS_PER_PUBLISHER) as u64;
    let stats = broker.stats();
    assert_eq!(stats.published, total);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.retried, 0);
    assert_eq!(
        stats.mediated, 0,
        "in-process publishes have no wire origin"
    );

    // No lost or duplicated deliveries at the stable consumers...
    for (i, sink) in wse_sinks.iter().enumerate() {
        let got = sink.received();
        assert_eq!(got.len() as u64, total, "wse sink {i}");
        assert_publisher_order(&got, &format!("wse sink {i}"));
    }
    for (i, consumer) in wsn_consumers.iter().enumerate() {
        let got: Vec<Element> = consumer
            .notifications()
            .into_iter()
            .map(|n| n.message)
            .collect();
        assert_eq!(got.len() as u64, total, "wsn consumer {i}");
        assert_publisher_order(&got, &format!("wsn consumer {i}"));
    }

    // ...and the stats agree exactly with what every consumer —
    // including the churn set — actually observed.
    let churn_received: u64 = churn_sinks.iter().map(|s| s.received().len() as u64).sum();
    for sink in &churn_sinks {
        assert_publisher_order(&sink.received(), "churn sink");
    }
    assert_eq!(
        stats.delivered_wse,
        wse_sinks.len() as u64 * total + churn_received
    );
    assert_eq!(stats.delivered_wsn, wsn_consumers.len() as u64 * total);
    assert_eq!(
        broker.subscription_count(),
        wse_sinks.len() + wsn_consumers.len()
    );
}

#[test]
fn sequential_and_parallel_fanout_agree() {
    let run = |workers: usize| {
        let net = Network::new();
        let broker = WsMessenger::start(&net, "http://broker");
        broker.set_fanout_workers(workers);
        let sinks: Vec<EventSink> = (0..8)
            .map(|i| {
                let sink =
                    EventSink::start(&net, format!("http://s-{i}").as_str(), WseVersion::Aug2004);
                Subscriber::new(&net, WseVersion::Aug2004)
                    .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
                    .unwrap();
                sink
            })
            .collect();
        for n in 0..20 {
            broker.publish_on("storms", &event(0, n));
        }
        let received: Vec<Vec<String>> = sinks
            .iter()
            .map(|s| {
                s.received()
                    .iter()
                    .map(|e| e.attr("n").unwrap().to_string())
                    .collect()
            })
            .collect();
        (broker.stats(), received)
    };
    let (seq_stats, seq_received) = run(1);
    let (par_stats, par_received) = run(8);
    assert_eq!(seq_stats, par_stats);
    assert_eq!(seq_received, par_received);
}
