//! Concurrency: the broker shared across publisher and subscriber
//! threads keeps its accounting exact.

use std::thread;
use wsm_eventing::{EventSink, SubscribeRequest, Subscriber, WseVersion};
use wsm_messenger::WsMessenger;
use wsm_transport::{DeliveryOutcome, Network};
use wsm_xml::Element;

#[test]
fn broker_survives_concurrent_publish_and_subscribe() {
    let net = Network::new();
    let broker = WsMessenger::start(&net, "http://broker");
    // Pre-register half the sinks.
    let subscriber = Subscriber::new(&net, WseVersion::Aug2004);
    for i in 0..4 {
        let sink = EventSink::start(
            &net,
            format!("http://pre-{i}").as_str(),
            WseVersion::Aug2004,
        );
        subscriber
            .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
            .unwrap();
    }

    let publisher = {
        let broker = broker.clone();
        thread::spawn(move || {
            for i in 0..500 {
                broker.publish_raw(&Element::local("e").with_attr("n", i.to_string()));
            }
        })
    };
    let joiner = {
        let net = net.clone();
        let broker = broker.clone();
        thread::spawn(move || {
            let subscriber = Subscriber::new(&net, WseVersion::Aug2004);
            for i in 0..4 {
                let sink = EventSink::start(
                    &net,
                    format!("http://late-{i}").as_str(),
                    WseVersion::Aug2004,
                );
                subscriber
                    .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
                    .unwrap();
            }
        })
    };
    publisher.join().unwrap();
    joiner.join().unwrap();
    assert_eq!(broker.subscription_count(), 8);
    // Everything the stats counted was actually traced as delivered.
    let stats = broker.stats();
    assert_eq!(stats.published, 500);
    assert_eq!(
        net.count_outcomes(|o| *o == DeliveryOutcome::Delivered) as u64,
        // Subscribes are request/response deliveries too (8 of them).
        stats.delivered_wse + 8
    );
}
