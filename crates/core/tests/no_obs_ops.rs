//! The observability SOAP operations degrade gracefully when the
//! `obs` feature is compiled out: `GetMetrics`/`GetTrace` answer a
//! well-formed SOAP fault — not a panic, not an empty body — while the
//! broker keeps mediating traffic.
//!
//! This file is a no-op under default features; run it with
//! `cargo test -p wsm-messenger --no-default-features`.
#![cfg(not(feature = "obs"))]

use wsm_eventing::{EventSink, SubscribeRequest, Subscriber, WseVersion};
use wsm_messenger::WsMessenger;
use wsm_soap::{Envelope, SoapVersion};
use wsm_transport::{Network, TransportError};
use wsm_xml::Element;

fn obs_request(op: &str) -> Envelope {
    Envelope::new(SoapVersion::V11).with_body(Element::ns(wsm_messenger::render::WSM_NS, op, "wsm"))
}

#[test]
fn metrics_and_trace_ops_fault_cleanly_without_obs() {
    let net = Network::new();
    let broker = WsMessenger::start(&net, "http://broker");
    let sink = EventSink::start(&net, "http://sink", WseVersion::Aug2004);
    Subscriber::new(&net, WseVersion::Aug2004)
        .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
        .unwrap();

    for op in ["GetMetrics", "GetTrace"] {
        match net.request("http://broker", obs_request(op)) {
            Err(TransportError::Fault(fault)) => {
                assert!(
                    fault.reason.contains("obs"),
                    "{op}: fault names the missing feature, got {:?}",
                    fault.reason
                );
            }
            other => panic!("{op}: expected a SOAP fault, got {other:?}"),
        }
    }

    // The fault path is an answer, not a crash: regular traffic still
    // flows through the same handler.
    broker.publish_on("storms", &Element::local("alert"));
    assert_eq!(sink.received().len(), 1, "delivery unaffected");
}
