//! The render cache's core claim, measured: one publication serializes
//! its payload once, not once per subscriber — asserted against the
//! process-global shared-subtree serialization counter.
//!
//! This file must stay the only test binary in the crate that asserts
//! on `wsm_xml::shared_serialization_count()` deltas: the counter is
//! process-global, and Rust runs each test *file* as its own process.
//! (The two tests below serialize their measured sections with a mutex
//! for the same reason.)

use std::sync::Mutex;
use wsm_eventing::{EventSink, SubscribeRequest, Subscriber, WseVersion};
use wsm_messenger::WsMessenger;
use wsm_notification::{
    NotificationConsumer, WsnClient, WsnFilter, WsnSubscribeRequest, WsnVersion,
};
use wsm_transport::Network;
use wsm_xml::{shared_serialization_count, Element};

static COUNTER_GUARD: Mutex<()> = Mutex::new(());

#[test]
fn publish_serializes_payload_once_across_all_subscribers() {
    let net = Network::new();
    let broker = WsMessenger::start(&net, "http://broker");

    // 16 WSE + 16 WSN subscribers: 32 envelopes per publish, spanning
    // both dialect families.
    for i in 0..16 {
        let sink = EventSink::start(
            &net,
            format!("http://wse-{i}").as_str(),
            WseVersion::Aug2004,
        );
        Subscriber::new(&net, WseVersion::Aug2004)
            .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
            .unwrap();
    }
    let consumers: Vec<NotificationConsumer> = (0..16)
        .map(|i| {
            let c = NotificationConsumer::start(
                &net,
                format!("http://wsn-{i}").as_str(),
                WsnVersion::V1_3,
            );
            WsnClient::new(&net, WsnVersion::V1_3)
                .subscribe(
                    broker.uri(),
                    &WsnSubscribeRequest::new(c.epr()).with_filter(WsnFilter::topic("storms")),
                )
                .unwrap();
            c
        })
        .collect();

    let payload = Element::local("alert").with_child(Element::local("detail").with_text("hail"));
    let guard = COUNTER_GUARD.lock().unwrap();
    let before = shared_serialization_count();
    let delivered = broker.publish_on("storms", &payload);
    let per_event = shared_serialization_count() - before;
    drop(guard);

    assert_eq!(delivered, 32);
    // Two equivalence classes were rendered (WSE Aug2004 and WSN 1.3
    // wrapped), so the ceiling is 2 — and payload sharing across
    // classes brings the actual count down to 1.
    assert!(
        per_event <= 2,
        "payload serialized {per_event} times for one event"
    );
    assert_eq!(
        per_event, 1,
        "both dialect classes share one payload serialization"
    );
    assert_eq!(consumers[0].notifications().len(), 1);
}

#[test]
fn each_publication_serializes_its_own_payload_once() {
    let net = Network::new();
    let broker = WsMessenger::start(&net, "http://broker");
    for i in 0..8 {
        let sink = EventSink::start(&net, format!("http://s-{i}").as_str(), WseVersion::Aug2004);
        Subscriber::new(&net, WseVersion::Aug2004)
            .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
            .unwrap();
    }
    let guard = COUNTER_GUARD.lock().unwrap();
    let before = shared_serialization_count();
    for n in 0..10 {
        broker.publish_raw(&Element::local("e").with_attr("n", n.to_string()));
    }
    let total = shared_serialization_count() - before;
    drop(guard);
    assert_eq!(
        total, 10,
        "one payload serialization per publication, not per subscriber"
    );
}
