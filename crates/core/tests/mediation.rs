//! End-to-end mediation tests: the §VII claims, exercised over the wire.

use std::sync::Arc;
use wsm_addressing::EndpointReference;
use wsm_eventing::{
    DeliveryMode, EventSink, Expires, Filter, SubscribeRequest, Subscriber, WseVersion,
};
use wsm_jms::JmsProvider;
use wsm_messenger::{InternalEvent, JmsBackend, SpecDialect, WsMessenger};
use wsm_notification::{
    NotificationConsumer, Termination, WsnClient, WsnCodec, WsnFilter, WsnSubscribeRequest,
    WsnVersion,
};
use wsm_transport::Network;
use wsm_xml::Element;

fn setup() -> (Network, WsMessenger) {
    let net = Network::new();
    let broker = WsMessenger::start(&net, "http://broker");
    (net, broker)
}

#[test]
fn wsn_publisher_reaches_wse_consumer() {
    let (net, broker) = setup();
    let sink = EventSink::start(&net, "http://sink", WseVersion::Aug2004);
    Subscriber::new(&net, WseVersion::Aug2004)
        .subscribe(
            broker.uri(),
            SubscribeRequest::push(sink.epr()).with_filter(Filter::xpath("/alert[@sev > 2]")),
        )
        .unwrap();

    // A WSN publisher posts a wrapped Notify to the broker.
    let codec = WsnCodec::new(WsnVersion::V1_3);
    let msg = wsm_notification::NotificationMessage {
        topic: wsm_topics::TopicPath::parse("storms"),
        producer: Some(EndpointReference::new("http://publisher")),
        subscription: None,
        message: Element::local("alert").with_attr("sev", "4"),
    };
    net.send(
        broker.uri(),
        codec.notify(&EndpointReference::new(broker.uri()), &[msg]),
    )
    .unwrap();

    let got = sink.received();
    assert_eq!(got.len(), 1, "WSN publication delivered to WSE consumer");
    assert_eq!(got[0].attr("sev"), Some("4"));
    let stats = broker.stats();
    assert_eq!(stats.delivered_wse, 1);
    assert_eq!(
        stats.mediated, 1,
        "cross-family delivery counted as mediated"
    );
}

#[test]
fn wse_raw_publication_reaches_wsn_consumer() {
    let (net, broker) = setup();
    let consumer = NotificationConsumer::start(&net, "http://nc", WsnVersion::V1_3);
    WsnClient::new(&net, WsnVersion::V1_3)
        .subscribe(
            broker.uri(),
            &WsnSubscribeRequest::new(consumer.epr()).with_filter(WsnFilter::content("/job")),
        )
        .unwrap();

    // A WSE-style producer posts the raw payload.
    broker.publish_event(
        InternalEvent::raw(Element::local("job").with_text("done"))
            .with_origin(SpecDialect::Wse(WseVersion::Aug2004)),
    );

    let got = consumer.notifications();
    assert_eq!(
        got.len(),
        1,
        "raw publication wrapped into Notify for WSN consumer"
    );
    assert_eq!(got[0].message.text(), "done");
    assert!(
        got[0].producer.is_some(),
        "broker fills in a producer reference"
    );
    assert_eq!(broker.stats().mediated, 1);
}

#[test]
fn both_families_subscribe_side_by_side() {
    let (net, broker) = setup();
    let wse_sink = EventSink::start(&net, "http://s1", WseVersion::Aug2004);
    let wse_old_sink = EventSink::start(&net, "http://s2", WseVersion::Jan2004);
    let wsn_consumer = NotificationConsumer::start(&net, "http://s3", WsnVersion::V1_3);
    let wsn_old_consumer = NotificationConsumer::start(&net, "http://s4", WsnVersion::V1_0);

    Subscriber::new(&net, WseVersion::Aug2004)
        .subscribe(broker.uri(), SubscribeRequest::push(wse_sink.epr()))
        .unwrap();
    Subscriber::new(&net, WseVersion::Jan2004)
        .subscribe(broker.uri(), SubscribeRequest::push(wse_old_sink.epr()))
        .unwrap();
    WsnClient::new(&net, WsnVersion::V1_3)
        .subscribe(broker.uri(), &WsnSubscribeRequest::new(wsn_consumer.epr()))
        .unwrap();
    WsnClient::new(&net, WsnVersion::V1_0)
        .subscribe(
            broker.uri(),
            &WsnSubscribeRequest::new(wsn_old_consumer.epr()).with_filter(WsnFilter::topic("t")),
        )
        .unwrap();
    assert_eq!(broker.subscription_count(), 4);

    broker.publish_on("t", &Element::local("ev"));
    assert_eq!(wse_sink.received().len(), 1);
    assert_eq!(wse_old_sink.received().len(), 1);
    assert_eq!(wsn_consumer.notifications().len(), 1);
    assert_eq!(wsn_old_consumer.notifications().len(), 1);
    let stats = broker.stats();
    assert_eq!(stats.delivered_wse, 2);
    assert_eq!(stats.delivered_wsn, 2);
}

#[test]
fn responses_follow_request_specification() {
    // The subscribe response to a WSE 08/2004 client must carry the id
    // in ReferenceParameters; to a WSN 1.0 client in ReferenceProperties.
    let (net, broker) = setup();
    let wse_codec = wsm_eventing::WseCodec::new(WseVersion::Aug2004);
    let env = wse_codec.subscribe(
        broker.uri(),
        &SubscribeRequest::push(EndpointReference::new("http://sink")),
    );
    let resp = net.request(broker.uri(), env).unwrap();
    let xml = resp.to_xml();
    assert!(xml.contains(WseVersion::Aug2004.ns()), "{xml}");
    assert!(xml.contains("ReferenceParameters"), "{xml}");

    let wsn_codec = WsnCodec::new(WsnVersion::V1_0);
    let env = wsn_codec.subscribe(
        broker.uri(),
        &WsnSubscribeRequest::new(EndpointReference::new("http://sink2"))
            .with_filter(WsnFilter::topic("t")),
    );
    let resp = net.request(broker.uri(), env).unwrap();
    let xml = resp.to_xml();
    assert!(xml.contains(WsnVersion::V1_0.ns()), "{xml}");
    assert!(xml.contains("ReferenceProperties"), "{xml}");
}

#[test]
fn wse_management_against_the_broker() {
    let (net, broker) = setup();
    let sink = EventSink::start(&net, "http://sink", WseVersion::Aug2004);
    let subscriber = Subscriber::new(&net, WseVersion::Aug2004);
    let h = subscriber
        .subscribe(
            broker.uri(),
            SubscribeRequest::push(sink.epr()).with_expires(Expires::Duration(60_000)),
        )
        .unwrap();
    assert_eq!(
        subscriber.get_status(&h).unwrap(),
        Some(Expires::At(60_000))
    );
    subscriber
        .renew(&h, Some(Expires::Duration(120_000)))
        .unwrap();
    assert_eq!(
        subscriber.get_status(&h).unwrap(),
        Some(Expires::At(120_000))
    );
    subscriber.unsubscribe(&h).unwrap();
    assert_eq!(broker.subscription_count(), 0);
}

#[test]
fn wsn_13_and_10_management_against_the_broker() {
    let (net, broker) = setup();
    // 1.3: native ops.
    let c13 = NotificationConsumer::start(&net, "http://c13", WsnVersion::V1_3);
    let client13 = WsnClient::new(&net, WsnVersion::V1_3);
    let h13 = client13
        .subscribe(
            broker.uri(),
            &WsnSubscribeRequest::new(c13.epr()).with_termination(Termination::Duration(1_000)),
        )
        .unwrap();
    client13.renew(&h13, Termination::Duration(5_000)).unwrap();
    client13.pause(&h13).unwrap();
    broker.publish_raw(&Element::local("x"));
    assert!(c13.notifications().is_empty(), "paused");
    client13.resume(&h13).unwrap();
    broker.publish_raw(&Element::local("y"));
    assert_eq!(c13.notifications().len(), 1);
    client13.unsubscribe(&h13).unwrap();

    // 1.0: WSRF ops.
    let c10 = NotificationConsumer::start(&net, "http://c10", WsnVersion::V1_0);
    let client10 = WsnClient::new(&net, WsnVersion::V1_0);
    let h10 = client10
        .subscribe(
            broker.uri(),
            &WsnSubscribeRequest::new(c10.epr()).with_filter(WsnFilter::topic("t")),
        )
        .unwrap();
    client10.renew(&h10, Termination::At(9_000)).unwrap(); // → SetTerminationTime
    let tt = client10.get_status_wsrf(&h10, "TerminationTime").unwrap();
    assert_eq!(tt.as_deref(), Some("1970-01-01T00:00:09Z"));
    client10.unsubscribe(&h10).unwrap(); // → Destroy
    assert_eq!(broker.subscription_count(), 0);
}

#[test]
fn wse_pull_mode_through_broker() {
    let (net, broker) = setup();
    let fw_sink = EventSink::start_firewalled(&net, "http://fw", WseVersion::Aug2004);
    let subscriber = Subscriber::new(&net, WseVersion::Aug2004);
    let h = subscriber
        .subscribe(
            broker.uri(),
            SubscribeRequest::push(fw_sink.epr()).with_mode(DeliveryMode::Pull),
        )
        .unwrap();
    broker.publish_on("t", &Element::local("e1"));
    broker.publish_raw(&Element::local("e2"));
    assert!(fw_sink.received().is_empty());
    let events = subscriber.pull(&h, 10).unwrap();
    assert_eq!(events.len(), 2);
}

#[test]
fn wse_wrapped_mode_through_broker() {
    let (net, broker) = setup();
    let sink = EventSink::start(&net, "http://sink", WseVersion::Aug2004);
    Subscriber::new(&net, WseVersion::Aug2004)
        .subscribe(
            broker.uri(),
            SubscribeRequest::push(sink.epr()).with_mode(DeliveryMode::Wrapped),
        )
        .unwrap();
    broker.publish_raw(&Element::local("a"));
    broker.publish_raw(&Element::local("b"));
    assert!(sink.received().is_empty());
    assert_eq!(broker.flush_wrapped(), 1);
    assert_eq!(sink.received().len(), 2);
}

#[test]
fn delivery_failure_ends_wse_subscription_with_notice() {
    let (net, broker) = setup();
    let end_sink = EventSink::start(&net, "http://end", WseVersion::Aug2004);
    Subscriber::new(&net, WseVersion::Aug2004)
        .subscribe(
            broker.uri(),
            SubscribeRequest::push(EndpointReference::new("http://dead"))
                .with_end_to(end_sink.epr()),
        )
        .unwrap();
    broker.publish_raw(&Element::local("x"));
    assert_eq!(broker.subscription_count(), 0);
    let ends = end_sink.ends();
    assert_eq!(ends.len(), 1);
    assert_eq!(ends[0].0, wsm_eventing::EndStatus::DeliveryFailure);
    assert_eq!(broker.stats().failed, 1);
}

#[test]
fn get_current_message_served_cross_spec() {
    let (net, broker) = setup();
    // Publication arrives via WSE-style raw publish with a topic.
    broker.publish_on("storms", &Element::local("latest").with_text("v2"));
    let client = WsnClient::new(&net, WsnVersion::V1_3);
    let topic = wsm_topics::TopicExpression::concrete("storms").unwrap();
    let got = client
        .get_current_message(broker.uri(), &topic)
        .unwrap()
        .unwrap();
    assert_eq!(got.text(), "v2");
}

#[test]
fn jms_backend_carries_mediated_traffic() {
    let net = Network::new();
    let provider = JmsProvider::new();
    let broker = WsMessenger::start_with_backend(
        &net,
        "http://broker",
        Arc::new(JmsBackend::new(provider.clone(), "wsm.relay")),
    );
    assert_eq!(broker.backend_name(), "jms");
    let sink = EventSink::start(&net, "http://sink", WseVersion::Aug2004);
    Subscriber::new(&net, WseVersion::Aug2004)
        .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
        .unwrap();
    broker.publish_on("t", &Element::local("through-jms").with_text("ok"));
    let got = sink.received();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].text(), "ok");
    // The relay topic exists in the JMS provider (the wrap is real).
    assert_eq!(provider.subscriber_count("wsm.relay"), 1);
}

#[test]
fn expiry_is_honored_for_both_families() {
    let (net, broker) = setup();
    let sink = EventSink::start(&net, "http://s", WseVersion::Aug2004);
    Subscriber::new(&net, WseVersion::Aug2004)
        .subscribe(
            broker.uri(),
            SubscribeRequest::push(sink.epr()).with_expires(Expires::Duration(500)),
        )
        .unwrap();
    let consumer = NotificationConsumer::start(&net, "http://c", WsnVersion::V1_3);
    WsnClient::new(&net, WsnVersion::V1_3)
        .subscribe(
            broker.uri(),
            &WsnSubscribeRequest::new(consumer.epr()).with_termination(Termination::Duration(500)),
        )
        .unwrap();
    net.clock().advance_ms(1_000);
    broker.publish_raw(&Element::local("late"));
    assert!(sink.received().is_empty());
    assert!(consumer.notifications().is_empty());
    assert_eq!(broker.subscription_count(), 0);
}

#[test]
fn publisher_registration_accepted() {
    let (net, broker) = setup();
    let codec = WsnCodec::new(WsnVersion::V1_3);
    let env = codec.register_publisher(
        broker.uri(),
        Some(&EndpointReference::new("http://pub")),
        &[wsm_topics::TopicExpression::concrete("storms").unwrap()],
        false,
    );
    let resp = net.request(broker.uri(), env).unwrap();
    assert!(resp.to_xml().contains("PublisherRegistrationReference"));
    assert_eq!(broker.publisher_registration_count(), 1);
}

#[test]
fn topic_and_content_filters_combine_in_mediation() {
    let (net, broker) = setup();
    let consumer = NotificationConsumer::start(&net, "http://c", WsnVersion::V1_3);
    WsnClient::new(&net, WsnVersion::V1_3)
        .subscribe(
            broker.uri(),
            &WsnSubscribeRequest::new(consumer.epr())
                .with_filter(WsnFilter::topic("jobs"))
                .with_filter(WsnFilter::content("/job[@state='done']")),
        )
        .unwrap();
    broker.publish_on("jobs", &Element::local("job").with_attr("state", "running"));
    broker.publish_on("jobs", &Element::local("job").with_attr("state", "done"));
    broker.publish_on("other", &Element::local("job").with_attr("state", "done"));
    assert_eq!(consumer.notifications().len(), 1);
}

#[test]
fn unknown_message_treated_as_raw_publication() {
    let (net, broker) = setup();
    let sink = EventSink::start(&net, "http://s", WseVersion::Aug2004);
    Subscriber::new(&net, WseVersion::Aug2004)
        .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
        .unwrap();
    // A bare application payload posted straight to the broker.
    let env = wsm_soap::Envelope::new(wsm_soap::SoapVersion::V11)
        .with_body(Element::ns("urn:app", "reading", "app").with_text("42"));
    net.send(broker.uri(), env).unwrap();
    assert_eq!(sink.received().len(), 1);
    assert_eq!(sink.received()[0].text(), "42");
}

#[test]
fn retry_policy_absorbs_transient_loss() {
    let (net, broker) = setup();
    broker.set_delivery_attempts(3);
    let sink = EventSink::start(&net, "http://flaky", WseVersion::Aug2004);
    Subscriber::new(&net, WseVersion::Aug2004)
        .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
        .unwrap();
    // Two transient drops: the third attempt lands.
    net.drop_next("http://flaky", 2);
    broker.publish_raw(&Element::local("e1"));
    assert_eq!(sink.received().len(), 1, "retries delivered it");
    assert_eq!(broker.subscription_count(), 1, "subscription survives");
    let stats = broker.stats();
    assert_eq!(stats.retried, 2);
    assert_eq!(stats.failed, 0);

    // Loss exceeding the budget still drops the subscription.
    net.drop_next("http://flaky", 3);
    broker.publish_raw(&Element::local("e2"));
    assert_eq!(sink.received().len(), 1);
    assert_eq!(broker.subscription_count(), 0);
    assert_eq!(broker.stats().failed, 1);
}

#[test]
fn no_retry_by_default() {
    let (net, broker) = setup();
    let sink = EventSink::start(&net, "http://once", WseVersion::Aug2004);
    Subscriber::new(&net, WseVersion::Aug2004)
        .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
        .unwrap();
    net.drop_next("http://once", 1);
    broker.publish_raw(&Element::local("e"));
    assert_eq!(broker.subscription_count(), 0, "single attempt by default");
    assert_eq!(broker.stats().retried, 0);
}

#[test]
fn must_understand_header_in_unknown_namespace_faults() {
    let (net, broker) = setup();
    let env =
        wsm_soap::Envelope::new(wsm_soap::SoapVersion::V12).with_body(Element::local("payload"));
    // Mark an alien header mustUnderstand.
    let alien = env.must_understand(Element::ns("urn:wise-security", "Token", "sec"));
    let env = env.with_header(alien);
    match net.send(broker.uri(), env) {
        Err(wsm_transport::TransportError::Fault(f)) => {
            assert_eq!(f.code, wsm_soap::FaultCode::MustUnderstand);
        }
        other => panic!("expected MustUnderstand fault, got {other:?}"),
    }
    // WSA headers marked mustUnderstand are fine — the broker speaks WSA.
    let mut env2 =
        wsm_soap::Envelope::new(wsm_soap::SoapVersion::V12).with_body(Element::local("payload"));
    let wsa_hdr = env2.must_understand(
        Element::ns("http://www.w3.org/2005/08/addressing", "Action", "wsa").with_text("urn:a"),
    );
    env2.add_header(wsa_hdr);
    net.send(broker.uri(), env2).unwrap();
    assert_eq!(broker.stats().published, 1);
}
