//! End-to-end observability: pipeline-stage tracing across a mediated
//! publish, the SOAP `GetMetrics`/`GetTrace` extension operations, and
//! per-worker delivery attribution in the transport trace.

use std::sync::Arc;
use wsm_eventing::{EventSink, SubscribeRequest, Subscriber, WseVersion};
use wsm_messenger::WsMessenger;
use wsm_notification::{NotificationMessage, WsnCodec, WsnVersion};
use wsm_soap::{Envelope, SoapVersion};
use wsm_topics::TopicPath;
use wsm_transport::{DeliveryOutcome, EndpointOptions, Network, SoapHandler};
use wsm_xml::Element;

fn broker_with_wse_sink(net: &Network) -> (WsMessenger, EventSink) {
    let broker = WsMessenger::start(net, "http://broker");
    let sink = EventSink::start(net, "http://sink", WseVersion::Aug2004);
    Subscriber::new(net, WseVersion::Aug2004)
        .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
        .unwrap();
    (broker, sink)
}

/// A WSN `Notify` carrying one message on `topic`.
fn notify_envelope(topic: &str, payload: Element) -> Envelope {
    let codec = WsnCodec::new(WsnVersion::V1_3);
    let to = wsm_addressing::EndpointReference::new("http://broker");
    codec.notify(
        &to,
        &[NotificationMessage::new(TopicPath::parse(topic), payload)],
    )
}

#[cfg(feature = "obs")]
mod spans {
    use super::*;

    /// The tentpole trace: a WSN publication mediated to a WS-Eventing
    /// consumer leaves one span per pipeline stage, all sharing the
    /// request's trace seq, in pipeline order.
    #[test]
    fn mediated_publish_traces_every_stage() {
        let net = Network::new();
        let (broker, sink) = broker_with_wse_sink(&net);
        broker.drain_trace_spans(); // discard the Subscribe request's Detect span

        net.send(
            "http://broker",
            notify_envelope("storms", Element::local("alert")),
        )
        .unwrap();
        assert_eq!(sink.received().len(), 1);
        assert_eq!(broker.stats().mediated, 1, "WSN->WSE crossing is mediated");

        let spans = broker.drain_trace_spans();
        let seq = spans
            .iter()
            .find(|s| s.stage.name() == "deliver")
            .expect("a deliver span")
            .seq;
        let stages: Vec<&str> = spans
            .iter()
            .filter(|s| s.seq == seq)
            .map(|s| s.stage.name())
            .collect();
        assert_eq!(
            stages,
            ["detect", "publish", "match", "render", "deliver", "resolve"],
            "one span per pipeline stage plus the terminal resolution, \
             in causal order, sharing the trace seq"
        );
        let matched = spans
            .iter()
            .find(|s| s.seq == seq && s.stage.name() == "match")
            .unwrap();
        assert_eq!(matched.items, 1, "one subscription matched");
        let delivered = spans
            .iter()
            .find(|s| s.seq == seq && s.stage.name() == "deliver")
            .unwrap();
        assert_eq!(delivered.items, 1, "one push delivery");
        let resolve = spans
            .iter()
            .find(|s| s.seq == seq && s.stage.name() == "resolve")
            .unwrap();
        assert!(
            resolve.subscriber.is_some(),
            "resolution names the subscriber"
        );
        assert_eq!(resolve.outcome, Some(wsm_messenger::Outcome::Delivered));
    }

    #[test]
    fn stage_histograms_and_latency_populate_snapshot() {
        let net = Network::new();
        let (broker, _sink) = broker_with_wse_sink(&net);
        for i in 0..10 {
            broker.publish_on("storms", &Element::local(format!("e{i}")));
        }
        let snap = broker.obs_snapshot();
        assert_eq!(snap.published, 10);
        assert_eq!(snap.delivered, 10);
        assert_eq!(snap.failed, 0);
        for (name, stats) in &snap.stages {
            // In-process publishes skip the SOAP handler (no detect),
            // a healthy sink never exercises the attempt stages, and a
            // one-subscriber fan-out never takes the sharded handoff.
            if matches!(
                *name,
                "detect" | "retry" | "dead_letter" | "resolve" | "handoff"
            ) {
                continue;
            }
            assert_eq!(stats.count, 10, "stage {name} recorded every publish");
            assert!(stats.p50 <= stats.p95 && stats.p95 <= stats.p99);
        }
        assert_eq!(snap.delivery_latency.count, 10);
        assert!(snap.delivery_latency.max as f64 >= snap.delivery_latency.p50);
        assert_eq!(snap.outcome_delivered, 10, "every delivery resolved");
        assert_eq!(
            snap.e2e_latency_ms.count, 10,
            "e2e histogram fed per resolution"
        );
    }

    #[test]
    fn kill_switch_stops_recording() {
        let net = Network::new();
        let (broker, sink) = broker_with_wse_sink(&net);
        broker.drain_trace_spans();
        broker.set_obs_enabled(false);
        broker.publish_on("storms", &Element::local("quiet"));
        assert_eq!(sink.received().len(), 1, "delivery is unaffected");
        assert!(
            broker.trace_spans().is_empty(),
            "no spans while recording is disabled"
        );
        assert_eq!(broker.obs_snapshot().published, 0);
        broker.set_obs_enabled(true);
        broker.publish_on("storms", &Element::local("loud"));
        assert_eq!(broker.obs_snapshot().published, 1);
        assert!(!broker.trace_spans().is_empty());
    }

    #[test]
    fn get_metrics_soap_roundtrip() {
        let net = Network::new();
        let (broker, _sink) = broker_with_wse_sink(&net);
        broker.publish_on("storms", &Element::local("alert"));
        let req = Envelope::new(SoapVersion::V11).with_body(Element::ns(
            wsm_messenger::render::WSM_NS,
            "GetMetrics",
            "wsm",
        ));
        let resp = net.request("http://broker", req).unwrap();
        let body = resp.body().unwrap();
        assert!(body
            .name
            .is(wsm_messenger::render::WSM_NS, "GetMetricsResponse"));
        let text = body
            .child_ns(wsm_messenger::render::WSM_NS, "Exposition")
            .unwrap()
            .text();
        assert!(text.contains("wsm_published_total 1"), "got:\n{text}");
        assert!(text.contains("wsm_delivered_total 1"));
        assert!(
            text.contains("wsm_subscriptions 1"),
            "gauge refreshed at scrape"
        );
        assert!(text.contains("wsm_stage_match_ns_bucket"));
    }

    #[test]
    fn get_trace_soap_roundtrip_and_drain() {
        let net = Network::new();
        let (broker, _sink) = broker_with_wse_sink(&net);
        broker.drain_trace_spans();
        broker.publish_on("storms", &Element::local("alert"));

        let trace_req = || {
            Envelope::new(SoapVersion::V11).with_body(
                Element::ns(wsm_messenger::render::WSM_NS, "GetTrace", "wsm")
                    .with_attr("Drain", "true"),
            )
        };
        let resp = net.request("http://broker", trace_req()).unwrap();
        let body = resp.body().unwrap();
        assert!(body
            .name
            .is(wsm_messenger::render::WSM_NS, "GetTraceResponse"));
        let stages: Vec<String> = body
            .elements()
            .map(|s| s.attr("Stage").unwrap().to_string())
            .collect();
        assert_eq!(stages, ["publish", "match", "render", "deliver", "resolve"]);
        for span in body.elements() {
            assert!(span.attr("Seq").is_some());
            assert!(span.attr("DurNs").unwrap().parse::<u64>().is_ok());
        }
        let resolve = body
            .elements()
            .find(|s| s.attr("Stage") == Some("resolve"))
            .unwrap();
        assert!(resolve.attr("Subscriber").is_some());
        assert_eq!(resolve.attr("Outcome"), Some("delivered"));
        assert_eq!(resolve.attr("Attempt"), Some("0"));

        // Drain="true" emptied the ring.
        let resp = net.request("http://broker", trace_req()).unwrap();
        assert_eq!(resp.body().unwrap().elements().count(), 0);
    }

    /// The acceptance chaos test: an event whose consumer swallows
    /// every delivery traverses multiple retries and lands in the
    /// dead-letter store — and the ring can reconstruct its complete
    /// causal timeline: every attempt ordinal in order, the
    /// dead-letter move, and a terminal outcome whose end-to-end
    /// latency spans publish→dead-letter, not just the first send.
    #[test]
    fn retried_then_dead_lettered_event_has_a_complete_story() {
        let net = Network::new();
        net.set_latency_ms(5);
        let broker = WsMessenger::start(&net, "http://broker");
        broker.set_fanout_workers(1);
        broker.set_fault_tolerance(Some(wsm_messenger::FaultTolerance {
            base_backoff_ms: 25,
            max_backoff_ms: 400,
            seed: 7,
            max_redeliveries: 4,
            ..Default::default()
        }));
        EventSink::start(&net, "http://blackhole", WseVersion::Aug2004);
        Subscriber::new(&net, WseVersion::Aug2004)
            .subscribe(
                broker.uri(),
                SubscribeRequest::push(wsm_addressing::EndpointReference::new("http://blackhole")),
            )
            .unwrap();
        net.set_fault_plan(wsm_transport::FaultPlan::seeded(7).with_endpoint(
            "http://blackhole",
            wsm_transport::EndpointFaults::new().with_drop_rate(1.0),
        ));

        let published_at = net.clock().now_ms();
        broker.publish_on("storms", &Element::local("doomed"));
        broker.drain_redeliveries(600_000);
        assert_eq!(broker.dead_letters().len(), 1, "the event dead-lettered");

        let stories = broker.delivery_stories();
        let story = stories
            .iter()
            .find(|s| s.outcome == Some(wsm_messenger::Outcome::DeadLettered))
            .expect("a dead-lettered story");

        // Every attempt is present, in causal order, starting from the
        // original fan-out attempt.
        let attempts = story.attempts();
        assert!(
            attempts.len() >= 3,
            "first attempt plus >=2 retries, got {attempts:?}"
        );
        assert_eq!(attempts[0], 0, "the original fan-out attempt is span 0");
        assert!(
            attempts.windows(2).all(|w| w[0] < w[1]),
            "attempt ordinals strictly increase: {attempts:?}"
        );
        let at: Vec<u64> = story.spans.iter().map(|s| s.at_ms).collect();
        assert!(
            at.windows(2).all(|w| w[0] <= w[1]),
            "spans are in causal order: {at:?}"
        );

        // The timeline terminates: a dead-letter move, then a resolve
        // span carrying the outcome.
        assert!(story
            .spans
            .iter()
            .any(|s| s.stage == wsm_messenger::Stage::DeadLetter));
        let last = story.spans.last().unwrap();
        assert_eq!(last.stage, wsm_messenger::Stage::Resolve);
        assert_eq!(last.outcome, Some(wsm_messenger::Outcome::DeadLettered));

        // End-to-end latency covers the whole retry chain (backoffs
        // included), not just the 5ms first send.
        let e2e = story.e2e_ms().expect("terminal latency");
        assert_eq!(story.published_at_ms, Some(published_at));
        assert_eq!(
            e2e,
            story.resolved_at_ms.unwrap() - published_at,
            "resolve span carries publish->dead-letter latency"
        );
        assert!(e2e >= 50, "covers the backoff chain, got {e2e}ms");
        let snap = broker.obs_snapshot();
        assert_eq!(snap.outcome_dead_lettered, 1);
        assert_eq!(
            snap.e2e_latency_ms.max, e2e,
            "the e2e histogram saw the full publish->dead-letter latency"
        );
    }

    /// Satellite: overflowing the span ring is not silent — the
    /// eviction count surfaces as a gauge in the Prometheus exposition
    /// AND as the trailing gauge line of the JSONL export, and both
    /// agree with the snapshot.
    #[test]
    fn span_ring_overflow_surfaces_drop_count_in_both_exporters() {
        let net = Network::new();
        let (broker, _sink) = broker_with_wse_sink(&net);
        // Each mediated publish leaves 5 spans (publish, match, render,
        // deliver, resolve); 1000 publishes overflow the 4096-span ring.
        for i in 0..1000 {
            broker.publish_on("storms", &Element::local("e").with_attr("i", i.to_string()));
        }
        let snap = broker.obs_snapshot();
        assert!(
            snap.spans_evicted > 0,
            "ring overflowed ({} buffered)",
            snap.spans_buffered
        );

        let prom = broker.metrics_text();
        let gauge_line = prom
            .lines()
            .find(|l| l.starts_with("wsm_spans_dropped "))
            .expect("span-loss gauge exposed to Prometheus");
        let prom_value: u64 = gauge_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(prom_value, snap.spans_evicted);

        let jsonl = broker.spans_jsonl();
        let trailer = jsonl.lines().last().expect("non-empty JSONL");
        assert_eq!(
            trailer,
            format!(
                "{{\"gauge\":\"spans_dropped\",\"value\":{}}}",
                snap.spans_evicted
            ),
            "JSONL trailer distinguishes a truncated trace"
        );
    }

    /// Satellite: the Prometheus text the broker actually serves is
    /// well-formed — every sample family carries `# HELP` and `# TYPE`
    /// lines, histogram buckets are cumulative (monotone, `+Inf` equal
    /// to `_count`), and SLO label values are escaped.
    #[test]
    fn prometheus_exposition_is_well_formed() {
        let net = Network::new();
        let (broker, _sink) = broker_with_wse_sink(&net);
        broker.set_slos(vec![wsm_messenger::SloSpec::p99(
            "tricky \"e2e\" target\\budget",
            50,
            60_000,
        )]);
        for _ in 0..20 {
            broker.publish_on("storms", &Element::local("alert"));
            net.clock().advance_ms(3);
        }
        let text = broker.metrics_text();

        // Families named by `# TYPE` each have a help line and at
        // least one sample.
        let mut families = 0;
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("# TYPE ") else {
                continue;
            };
            families += 1;
            let name = rest.split_whitespace().next().unwrap();
            assert!(
                text.lines()
                    .any(|l| l.starts_with(&format!("# HELP {name} "))),
                "{name}: missing # HELP"
            );
            assert!(
                text.lines().any(|l| {
                    !l.starts_with('#')
                        && (l.starts_with(&format!("{name} "))
                            || l.starts_with(&format!("{name}_"))
                            || l.starts_with(&format!("{name}{{")))
                }),
                "{name}: no sample line"
            );
        }
        assert!(families > 10, "a real exposition, got {families} families");

        // Histogram buckets are cumulative and consistent.
        let mut checked = 0;
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("# TYPE ") else {
                continue;
            };
            let mut parts = rest.split_whitespace();
            let (name, kind) = (parts.next().unwrap(), parts.next().unwrap());
            if kind != "histogram" {
                continue;
            }
            let counts: Vec<u64> = text
                .lines()
                .filter(|l| l.starts_with(&format!("{name}_bucket{{")))
                .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
                .collect();
            assert!(!counts.is_empty(), "{name}: histogram without buckets");
            assert!(
                counts.windows(2).all(|w| w[0] <= w[1]),
                "{name}: buckets are cumulative: {counts:?}"
            );
            let count: u64 = text
                .lines()
                .find(|l| l.starts_with(&format!("{name}_count ")))
                .and_then(|l| l.split_whitespace().nth(1))
                .unwrap()
                .parse()
                .unwrap();
            assert_eq!(
                *counts.last().unwrap(),
                count,
                "{name}: +Inf bucket equals _count"
            );
            checked += 1;
        }
        assert!(checked > 3, "several histograms checked, got {checked}");

        // The SLO family rides along, with the label value escaped.
        assert!(
            text.contains(r#"slo="tricky \"e2e\" target\\budget""#),
            "escaped SLO label, got:\n{text}"
        );
        assert!(text.contains("wsm_slo_pass{"));
    }
}

/// Consumers that never answer: the fan-out should attribute each
/// failed outcome to the pool worker that attempted it.
struct Unreachable;
impl SoapHandler for Unreachable {
    fn handle(&self, _req: Envelope) -> Result<Option<Envelope>, wsm_soap::Fault> {
        Ok(None)
    }
}

/// Satellite 1 (compiles with or without `obs`): the sharded fan-out
/// path records one transport trace record per attempt, tagged with
/// the thread that sent it — pool workers (`wsm-push-N`) or the
/// publishing thread, which participates in draining — covering
/// delivered, dropped, refused, and missing-endpoint outcomes.
#[test]
fn parallel_fanout_trace_attributes_workers_and_outcomes() {
    let net = Network::new();
    let broker = WsMessenger::start(&net, "http://broker");
    broker.set_fanout_workers(4);
    broker.set_dispatch_mode(wsm_messenger::DispatchMode::Sharded);

    let subscribe = |addr: &str| {
        Subscriber::new(&net, WseVersion::Aug2004)
            .subscribe(
                broker.uri(),
                SubscribeRequest::push(wsm_addressing::EndpointReference::new(addr)),
            )
            .unwrap();
    };
    // Five healthy sinks plus one of each failure mode: enough jobs to
    // engage the worker pool.
    let mut sinks = Vec::new();
    for i in 0..5 {
        let uri = format!("http://good-{i}");
        sinks.push(EventSink::start(&net, &uri, WseVersion::Aug2004));
        subscribe(&uri);
    }
    net.register_with(
        "http://walled",
        Arc::new(Unreachable),
        EndpointOptions { firewalled: true },
    );
    subscribe("http://walled");
    net.register("http://flaky", Arc::new(Unreachable));
    net.drop_next("http://flaky", 1);
    subscribe("http://flaky");
    subscribe("http://missing");

    // Discard the subscribe round-trips, then slow the wire enough
    // that the publisher's own claim pass cannot race through every
    // shard before the pool workers wake.
    net.drain_trace();
    net.set_send_delay_us(2_000);
    broker.publish_raw(&Element::local("alert"));
    net.set_send_delay_us(0);
    for sink in &sinks {
        assert_eq!(sink.received().len(), 1);
    }

    let fanout: Vec<_> = net
        .drain_trace()
        .into_iter()
        .filter(|r| !r.two_way)
        .collect();
    assert_eq!(fanout.len(), 8, "one record per push attempt");
    assert!(
        fanout.iter().any(|r| r.worker.starts_with("wsm-push-")),
        "pool workers carried part of the fan-out, got {:?}",
        fanout.iter().map(|r| r.worker.clone()).collect::<Vec<_>>()
    );
    let outcome_of = |to: &str| &fanout.iter().find(|r| r.to == to).unwrap().outcome;
    assert_eq!(*outcome_of("http://walled"), DeliveryOutcome::Refused);
    assert_eq!(*outcome_of("http://flaky"), DeliveryOutcome::Dropped);
    assert_eq!(*outcome_of("http://missing"), DeliveryOutcome::NoEndpoint);
    assert_eq!(
        fanout
            .iter()
            .filter(|r| r.outcome == DeliveryOutcome::Delivered)
            .count(),
        5
    );
}
