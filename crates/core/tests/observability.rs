//! End-to-end observability: pipeline-stage tracing across a mediated
//! publish, the SOAP `GetMetrics`/`GetTrace` extension operations, and
//! per-worker delivery attribution in the transport trace.

use std::sync::Arc;
use wsm_eventing::{EventSink, SubscribeRequest, Subscriber, WseVersion};
use wsm_messenger::WsMessenger;
use wsm_notification::{NotificationMessage, WsnCodec, WsnVersion};
use wsm_soap::{Envelope, SoapVersion};
use wsm_topics::TopicPath;
use wsm_transport::{DeliveryOutcome, EndpointOptions, Network, SoapHandler};
use wsm_xml::Element;

fn broker_with_wse_sink(net: &Network) -> (WsMessenger, EventSink) {
    let broker = WsMessenger::start(net, "http://broker");
    let sink = EventSink::start(net, "http://sink", WseVersion::Aug2004);
    Subscriber::new(net, WseVersion::Aug2004)
        .subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
        .unwrap();
    (broker, sink)
}

/// A WSN `Notify` carrying one message on `topic`.
fn notify_envelope(topic: &str, payload: Element) -> Envelope {
    let codec = WsnCodec::new(WsnVersion::V1_3);
    let to = wsm_addressing::EndpointReference::new("http://broker");
    codec.notify(
        &to,
        &[NotificationMessage::new(TopicPath::parse(topic), payload)],
    )
}

#[cfg(feature = "obs")]
mod spans {
    use super::*;

    /// The tentpole trace: a WSN publication mediated to a WS-Eventing
    /// consumer leaves one span per pipeline stage, all sharing the
    /// request's trace seq, in pipeline order.
    #[test]
    fn mediated_publish_traces_every_stage() {
        let net = Network::new();
        let (broker, sink) = broker_with_wse_sink(&net);
        broker.drain_trace_spans(); // discard the Subscribe request's Detect span

        net.send(
            "http://broker",
            notify_envelope("storms", Element::local("alert")),
        )
        .unwrap();
        assert_eq!(sink.received().len(), 1);
        assert_eq!(broker.stats().mediated, 1, "WSN->WSE crossing is mediated");

        let spans = broker.drain_trace_spans();
        let seq = spans
            .iter()
            .find(|s| s.stage.name() == "deliver")
            .expect("a deliver span")
            .seq;
        let stages: Vec<&str> = spans
            .iter()
            .filter(|s| s.seq == seq)
            .map(|s| s.stage.name())
            .collect();
        assert_eq!(
            stages,
            ["detect", "publish", "match", "render", "deliver"],
            "one span per stage, in pipeline order, sharing the trace seq"
        );
        let matched = spans
            .iter()
            .find(|s| s.seq == seq && s.stage.name() == "match")
            .unwrap();
        assert_eq!(matched.items, 1, "one subscription matched");
        let delivered = spans
            .iter()
            .find(|s| s.seq == seq && s.stage.name() == "deliver")
            .unwrap();
        assert_eq!(delivered.items, 1, "one push delivery");
    }

    #[test]
    fn stage_histograms_and_latency_populate_snapshot() {
        let net = Network::new();
        let (broker, _sink) = broker_with_wse_sink(&net);
        for i in 0..10 {
            broker.publish_on("storms", &Element::local(format!("e{i}")));
        }
        let snap = broker.obs_snapshot();
        assert_eq!(snap.published, 10);
        assert_eq!(snap.delivered, 10);
        assert_eq!(snap.failed, 0);
        for (name, stats) in &snap.stages {
            if *name == "detect" {
                continue; // in-process publishes skip the SOAP handler
            }
            assert_eq!(stats.count, 10, "stage {name} recorded every publish");
            assert!(stats.p50 <= stats.p95 && stats.p95 <= stats.p99);
        }
        assert_eq!(snap.delivery_latency.count, 10);
        assert!(snap.delivery_latency.max as f64 >= snap.delivery_latency.p50);
    }

    #[test]
    fn kill_switch_stops_recording() {
        let net = Network::new();
        let (broker, sink) = broker_with_wse_sink(&net);
        broker.drain_trace_spans();
        broker.set_obs_enabled(false);
        broker.publish_on("storms", &Element::local("quiet"));
        assert_eq!(sink.received().len(), 1, "delivery is unaffected");
        assert!(
            broker.trace_spans().is_empty(),
            "no spans while recording is disabled"
        );
        assert_eq!(broker.obs_snapshot().published, 0);
        broker.set_obs_enabled(true);
        broker.publish_on("storms", &Element::local("loud"));
        assert_eq!(broker.obs_snapshot().published, 1);
        assert!(!broker.trace_spans().is_empty());
    }

    #[test]
    fn get_metrics_soap_roundtrip() {
        let net = Network::new();
        let (broker, _sink) = broker_with_wse_sink(&net);
        broker.publish_on("storms", &Element::local("alert"));
        let req = Envelope::new(SoapVersion::V11).with_body(Element::ns(
            wsm_messenger::render::WSM_NS,
            "GetMetrics",
            "wsm",
        ));
        let resp = net.request("http://broker", req).unwrap();
        let body = resp.body().unwrap();
        assert!(body
            .name
            .is(wsm_messenger::render::WSM_NS, "GetMetricsResponse"));
        let text = body
            .child_ns(wsm_messenger::render::WSM_NS, "Exposition")
            .unwrap()
            .text();
        assert!(text.contains("wsm_published_total 1"), "got:\n{text}");
        assert!(text.contains("wsm_delivered_total 1"));
        assert!(
            text.contains("wsm_subscriptions 1"),
            "gauge refreshed at scrape"
        );
        assert!(text.contains("wsm_stage_match_ns_bucket"));
    }

    #[test]
    fn get_trace_soap_roundtrip_and_drain() {
        let net = Network::new();
        let (broker, _sink) = broker_with_wse_sink(&net);
        broker.drain_trace_spans();
        broker.publish_on("storms", &Element::local("alert"));

        let trace_req = || {
            Envelope::new(SoapVersion::V11).with_body(
                Element::ns(wsm_messenger::render::WSM_NS, "GetTrace", "wsm")
                    .with_attr("Drain", "true"),
            )
        };
        let resp = net.request("http://broker", trace_req()).unwrap();
        let body = resp.body().unwrap();
        assert!(body
            .name
            .is(wsm_messenger::render::WSM_NS, "GetTraceResponse"));
        let stages: Vec<String> = body
            .elements()
            .map(|s| s.attr("Stage").unwrap().to_string())
            .collect();
        assert_eq!(stages, ["publish", "match", "render", "deliver"]);
        for span in body.elements() {
            assert!(span.attr("Seq").is_some());
            assert!(span.attr("DurNs").unwrap().parse::<u64>().is_ok());
        }

        // Drain="true" emptied the ring.
        let resp = net.request("http://broker", trace_req()).unwrap();
        assert_eq!(resp.body().unwrap().elements().count(), 0);
    }
}

/// Consumers that never answer: the fan-out should attribute each
/// failed outcome to the pool worker that attempted it.
struct Unreachable;
impl SoapHandler for Unreachable {
    fn handle(&self, _req: Envelope) -> Result<Option<Envelope>, wsm_soap::Fault> {
        Ok(None)
    }
}

/// Satellite 1 (compiles with or without `obs`): the parallel fan-out
/// path records one transport trace record per attempt, tagged with
/// the `wsm-push-N` worker thread that sent it, covering delivered,
/// dropped, refused, and missing-endpoint outcomes.
#[test]
fn parallel_fanout_trace_attributes_workers_and_outcomes() {
    let net = Network::new();
    let broker = WsMessenger::start(&net, "http://broker");
    broker.set_fanout_workers(4);

    let subscribe = |addr: &str| {
        Subscriber::new(&net, WseVersion::Aug2004)
            .subscribe(
                broker.uri(),
                SubscribeRequest::push(wsm_addressing::EndpointReference::new(addr)),
            )
            .unwrap();
    };
    // Five healthy sinks plus one of each failure mode: enough jobs to
    // engage the worker pool.
    let mut sinks = Vec::new();
    for i in 0..5 {
        let uri = format!("http://good-{i}");
        sinks.push(EventSink::start(&net, &uri, WseVersion::Aug2004));
        subscribe(&uri);
    }
    net.register_with(
        "http://walled",
        Arc::new(Unreachable),
        EndpointOptions { firewalled: true },
    );
    subscribe("http://walled");
    net.register("http://flaky", Arc::new(Unreachable));
    net.drop_next("http://flaky", 1);
    subscribe("http://flaky");
    subscribe("http://missing");

    net.drain_trace(); // discard the subscribe round-trips
    broker.publish_raw(&Element::local("alert"));
    for sink in &sinks {
        assert_eq!(sink.received().len(), 1);
    }

    let fanout: Vec<_> = net
        .drain_trace()
        .into_iter()
        .filter(|r| !r.two_way)
        .collect();
    assert_eq!(fanout.len(), 8, "one record per push attempt");
    for r in &fanout {
        assert!(
            r.worker.starts_with("wsm-push-"),
            "delivery to {} attributed to {:?}, not a pool worker",
            r.to,
            r.worker
        );
    }
    let outcome_of = |to: &str| &fanout.iter().find(|r| r.to == to).unwrap().outcome;
    assert_eq!(*outcome_of("http://walled"), DeliveryOutcome::Refused);
    assert_eq!(*outcome_of("http://flaky"), DeliveryOutcome::Dropped);
    assert_eq!(*outcome_of("http://missing"), DeliveryOutcome::NoEndpoint);
    assert_eq!(
        fanout
            .iter()
            .filter(|r| r.outcome == DeliveryOutcome::Delivered)
            .count(),
        5
    );
}
