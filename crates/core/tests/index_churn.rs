//! Match-index consistency under subscribe/unsubscribe churn.
//!
//! The registry's match index (topic trie, literal buckets, broadcast
//! list) is updated inside the registry lock, so a concurrent
//! publisher must observe it atomically: a `matching()` call may never
//! *miss* a subscription that is registered for the whole call, and
//! may never *return* one that was fully removed before the call
//! began. This exercises exactly the link/unlink paths the index adds.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use wsm_addressing::EndpointReference;
use wsm_eventing::WseVersion;
use wsm_messenger::registry::Registry;
use wsm_messenger::{BrokerDeliveryMode, InternalEvent, SpecDialect, UnifiedFilters};
use wsm_topics::TopicExpression;
use wsm_xml::Element;
use wsm_xpath::CompiledFilter;

fn insert(r: &Registry, filters: UnifiedFilters) -> String {
    r.insert(
        SpecDialect::Wse(WseVersion::Aug2004),
        EndpointReference::new("http://c"),
        None,
        filters,
        BrokerDeliveryMode::Push,
        false,
        None,
    )
}

fn xp(src: &str) -> Arc<CompiledFilter> {
    Arc::new(CompiledFilter::compile(src).unwrap())
}

/// Filter shapes covering every index placement: topic trie (concrete
/// and wildcard), literal bucket, broadcast (complex content filter),
/// and unfiltered.
fn churn_filters(i: usize) -> UnifiedFilters {
    match i % 5 {
        0 => UnifiedFilters {
            topics: vec![TopicExpression::concrete("storms/hail").unwrap()],
            content: vec![],
            producer_props: vec![],
        },
        1 => UnifiedFilters {
            topics: vec![TopicExpression::full("storms//*").unwrap()],
            content: vec![],
            producer_props: vec![],
        },
        2 => UnifiedFilters {
            topics: vec![],
            content: vec![xp("/e/src = 'gridftp'")],
            producer_props: vec![],
        },
        3 => UnifiedFilters {
            topics: vec![],
            content: vec![xp("contains(/e/src, 'ftp')")],
            producer_props: vec![],
        },
        _ => UnifiedFilters::default(),
    }
}

#[test]
fn churn_never_misses_live_or_matches_stale() {
    let registry = Registry::new();
    // Permanent subscriptions, one per placement; all match the probe
    // event, and every matching() call must return all of them.
    let permanent: Vec<String> = (0..5)
        .map(|i| insert(&registry, churn_filters(i)))
        .collect();
    let event = InternalEvent::on_topic(
        "storms/hail",
        Element::local("e").with_child(Element::local("src").with_text("gridftp")),
    );
    assert_eq!(registry.matching(&event, None, 0).len(), 5);

    let stop = Arc::new(AtomicBool::new(false));
    let rounds: Vec<Arc<AtomicUsize>> = (0..3).map(|_| Arc::new(AtomicUsize::new(0))).collect();
    let churners: Vec<_> = (0..3)
        .map(|t| {
            let registry = registry.clone();
            let stop = stop.clone();
            let rounds = rounds[t].clone();
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let ids: Vec<String> = (0..5)
                        .map(|i| insert(&registry, churn_filters(t * 5 + i)))
                        .collect();
                    for id in ids {
                        assert!(registry.remove(&id).is_some());
                    }
                    rounds.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Probe at least 400 times, then keep probing until every churner
    // has completed at least one round — a churner thread may not have
    // been scheduled yet when the fixed probe budget runs out. The
    // deadline only bounds the wait if a churner dies; join() below
    // surfaces its panic.
    let permanent_set: Vec<&str> = permanent.iter().map(String::as_str).collect();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let mut probes = 0usize;
    loop {
        let got = registry.matching(&event, None, 0);
        // Never miss: every permanent subscription matches the event
        // and is registered for the whole call.
        for id in &permanent_set {
            assert!(
                got.iter().any(|s| s.id == *id),
                "matching() missed live subscription {id}"
            );
        }
        // Never stale: results only ever name subscriptions that are
        // (or were, mid-call) registered — ids are minted by this
        // registry, so anything else would be an index leak.
        for s in &got {
            assert!(registry.get(&s.id).is_some() || !permanent_set.contains(&s.id.as_str()));
        }
        probes += 1;
        let all_progressed = rounds.iter().all(|r| r.load(Ordering::Relaxed) > 0);
        if (probes >= 400 && all_progressed) || std::time::Instant::now() >= deadline {
            break;
        }
    }
    stop.store(true, Ordering::Relaxed);
    for c in churners {
        c.join().unwrap();
    }
    for r in &rounds {
        assert!(r.load(Ordering::Relaxed) > 0, "churner made no progress");
    }

    // Quiesced: the churn subscriptions all removed themselves, so the
    // index must be exactly the permanent population again.
    let mut got: Vec<String> = registry
        .matching(&event, None, 0)
        .into_iter()
        .map(|s| s.id.clone())
        .collect();
    got.sort();
    let mut want = permanent.clone();
    want.sort();
    assert_eq!(got, want, "index retains stale links after churn");
    assert_eq!(registry.len(), 5);

    // The probe event with no topic reaches only topicless placements.
    let topicless = InternalEvent::raw(
        Element::local("e").with_child(Element::local("src").with_text("gridftp")),
    );
    assert_eq!(registry.matching(&topicless, None, 0).len(), 3);
}
