//! Concurrency stress for the global QName interner: many threads
//! interning overlapping name sets must converge on one `Arc<str>` per
//! distinct string, and the table must stay bounded (no duplicate
//! entries, no unbounded growth from contention retries).

use std::sync::Barrier;
use std::thread;
use wsm_xml::{intern, interned_count, Interned};

/// The overlapping working set: every thread interns all of these, in a
/// thread-dependent order, many times over.
fn names(thread: usize, round: usize) -> Vec<String> {
    let mut v: Vec<String> = (0..32)
        .map(|i| format!("stress-name-{}", (i + thread + round) % 32))
        .collect();
    // Mix in names every thread shares verbatim.
    v.push("Envelope".to_string());
    v.push("NotificationMessage".to_string());
    v.push(format!("per-round-{}", round % 8));
    v
}

#[test]
fn concurrent_interning_converges_and_stays_bounded() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 200;

    let before = interned_count();
    let barrier = Barrier::new(THREADS);

    let results: Vec<Vec<Interned>> = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    let mut last = Vec::new();
                    for r in 0..ROUNDS {
                        last = names(t, r).iter().map(|n| intern(n)).collect();
                    }
                    // Threads visit the rotating set in different
                    // orders; sort (by content) so vectors align.
                    last.sort();
                    last
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every thread's final round interned the same name set (round
    // ROUNDS-1), so the handles must be pointer-identical across
    // threads: one Arc per distinct string, however racy the inserts.
    let reference = &results[0];
    for other in &results[1..] {
        assert_eq!(reference.len(), other.len());
        for (a, b) in reference.iter().zip(other) {
            assert!(
                Interned::ptr_eq(a, b),
                "two threads hold different Arcs for {a:?}"
            );
        }
    }

    // Bounded: the workload touches 32 rotating names + 2 shared names
    // + 8 per-round names = at most 42 new entries, no matter how many
    // thread×round combinations raced to insert them.
    let added = interned_count() - before;
    assert!(added <= 42, "interner grew by {added} entries (> 42)");

    // And re-interning is a pure lookup: no growth on a second pass.
    let mid = interned_count();
    for t in 0..THREADS {
        for n in names(t, ROUNDS - 1) {
            intern(&n);
        }
    }
    assert_eq!(interned_count(), mid, "re-interning grew the table");
}

#[test]
fn interned_equality_and_borrowing_work_across_threads() {
    let a = intern("cross-thread-name");
    let b = thread::spawn(|| intern("cross-thread-name"))
        .join()
        .unwrap();
    assert!(Interned::ptr_eq(&a, &b));
    assert_eq!(a, "cross-thread-name");
    assert_eq!(a.as_str(), b.as_str());
}
