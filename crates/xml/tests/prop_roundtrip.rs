//! Property tests: serialization/parsing round-trips over generated trees.

use proptest::prelude::*;
use wsm_xml::{parse, to_pretty_string, to_string, Element, QName};

/// A small pool of names/namespaces so collisions and reuse happen often.
fn name_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("alpha".to_string()),
        Just("beta".to_string()),
        Just("Envelope".to_string()),
        Just("x-b_c.d".to_string()),
        "[a-zA-Z_][a-zA-Z0-9_-]{0,8}".prop_map(|s| s),
    ]
}

fn ns_strategy() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        Just(None),
        Just(Some("urn:a".to_string())),
        Just(Some("urn:b".to_string())),
        Just(Some("http://example.org/ns?q=1&x=2".to_string())),
    ]
}

fn prefix_strategy() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        Just(None),
        Just(Some("p".to_string())),
        Just(Some("q".to_string()))
    ]
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Includes all the characters that need escaping plus multibyte.
    proptest::string::string_regex("[ -~é世\\n\\t]{0,24}").unwrap()
}

fn leaf_strategy() -> impl Strategy<Value = Element> {
    (
        name_strategy(),
        ns_strategy(),
        prefix_strategy(),
        proptest::option::of(text_strategy()),
    )
        .prop_map(|(local, ns, prefix, text)| {
            let mut e = Element::new(match &ns {
                Some(u) => QName::ns(u, &local),
                None => QName::local(&local),
            });
            // Prefix hints only make sense for namespaced elements.
            e.prefix_hint = if ns.is_some() {
                prefix.map(|p| wsm_xml::intern(&p))
            } else {
                None
            };
            if let Some(t) = text {
                if !t.is_empty() {
                    e.push_text(t);
                }
            }
            e
        })
}

fn tree_strategy() -> impl Strategy<Value = Element> {
    leaf_strategy().prop_recursive(4, 32, 4, |inner| {
        (
            leaf_strategy(),
            prop::collection::vec(inner, 0..4),
            prop::collection::vec((name_strategy(), text_strategy()), 0..3),
        )
            .prop_map(|(mut e, kids, attrs)| {
                for (i, (name, value)) in attrs.into_iter().enumerate() {
                    // Deduplicate attribute names by suffixing the index.
                    e.set_attr(QName::local(format!("{name}{i}")), value);
                }
                for k in kids {
                    e.push(k);
                }
                e
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// write → parse is the identity on trees (modulo prefix hints,
    /// which equality rightly ignores).
    #[test]
    fn compact_roundtrip(tree in tree_strategy()) {
        let s = to_string(&tree);
        let back = parse(&s).unwrap_or_else(|e| panic!("reparse failed: {e}\ndoc: {s}"));
        prop_assert_eq!(&back, &tree);
    }

    /// Pretty-printing must not change the tree when no mixed content is
    /// involved; with mixed content it keeps text inline, so the tree is
    /// preserved there too.
    #[test]
    fn pretty_roundtrip_preserves_text(tree in tree_strategy()) {
        let s = to_pretty_string(&tree);
        let back = parse(&s).unwrap_or_else(|e| panic!("reparse failed: {e}\ndoc: {s}"));
        // Pretty printing inserts whitespace-only text nodes between
        // elements; compare after dropping those.
        fn strip_ws(e: &Element) -> Element {
            let mut out = Element::new(e.name.clone());
            out.attrs = e.attrs.clone();
            for c in &e.children {
                match c {
                    wsm_xml::Node::Text(t) if t.trim().is_empty() => {}
                    wsm_xml::Node::Element(child) => out.push(strip_ws(child)),
                    other => out.children.push(other.clone()),
                }
            }
            out
        }
        prop_assert_eq!(strip_ws(&back), strip_ws(&tree));
    }

    /// Escaping arbitrary text and unescaping returns the original.
    #[test]
    fn escape_unescape_identity(t in "[ -~éé≤≥\\n\\t\\r]{0,64}") {
        let esc = wsm_xml::escape::escape_text(&t);
        let back = wsm_xml::escape::unescape(&esc, 0).unwrap();
        prop_assert_eq!(back.as_ref(), t.as_str());
        let esc = wsm_xml::escape::escape_attr(&t);
        let back = wsm_xml::escape::unescape(&esc, 0).unwrap();
        prop_assert_eq!(back.as_ref(), t.as_str());
    }

    /// The differ reports no differences between a tree and itself, and
    /// prefix re-spelling never shows up as a difference.
    #[test]
    fn diff_self_is_empty(tree in tree_strategy()) {
        prop_assert!(wsm_xml::diff(&tree, &tree).is_empty());
        let reparsed = parse(&to_string(&tree)).unwrap();
        prop_assert!(wsm_xml::diff(&tree, &reparsed).is_empty());
    }
}
