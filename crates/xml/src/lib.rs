#![warn(missing_docs)]
//! # wsm-xml — XML infoset for the WS-Messenger reproduction
//!
//! A from-scratch, dependency-free XML 1.0 + Namespaces implementation
//! sized for SOAP messaging: a namespace-aware element tree, a
//! hand-written non-validating parser, a serializer with prefix
//! management, and a structural differ used by the paper's
//! message-format comparison experiment (§V.4).
//!
//! The WS-* specifications compared by the paper differ precisely at the
//! XML level — element names, namespaces, header/body placement — so the
//! infoset model here is the measuring instrument for the reproduction:
//! every artifact the tables and the diff experiment report is derived
//! from [`Element`] trees produced and consumed by this crate.
//!
//! ## Quick example
//!
//! ```
//! use wsm_xml::parse;
//!
//! let doc = parse("<a:root xmlns:a='urn:x'><leaf attr='1'>text</leaf></a:root>").unwrap();
//! assert_eq!(doc.name.local, "root");
//! assert_eq!(doc.name.ns.as_deref(), Some("urn:x"));
//! let leaf = doc.child("leaf").unwrap();
//! assert_eq!(leaf.attr("attr"), Some("1"));
//! assert_eq!(leaf.text(), "text");
//! ```

pub mod diff;
pub mod error;
pub mod escape;
pub mod intern;
pub mod name;
pub mod parser;
pub mod pool;
pub mod tree;
pub mod writer;
pub mod xsd;

pub use diff::{diff, DiffEntry, DiffKind};
pub use error::{XmlError, XmlResult};
pub use intern::{intern, interned_count, Interned};
pub use name::QName;
pub use parser::parse;
pub use pool::with_buffer;
pub use tree::{shared_serialization_count, Element, Node, SharedElement};
pub use writer::{to_pretty_string, to_string, write_into, WriteOptions};
