//! Error type shared by the parser and writer.

use std::fmt;

/// Convenient alias used throughout the crate.
pub type XmlResult<T> = Result<T, XmlError>;

/// An error raised while parsing or serializing XML.
///
/// Positions are byte offsets into the input, which is what the SOAP
/// layers report back to callers when an incoming message is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// What went wrong.
    pub kind: ErrorKind,
    /// Byte offset into the input at which the problem was detected.
    pub position: usize,
    /// Human-readable elaboration (offending name, expected token, ...).
    pub detail: String,
}

/// Classification of XML errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A token violated XML 1.0 well-formedness.
    Malformed,
    /// End tag did not match the open element.
    MismatchedTag,
    /// A namespace prefix had no in-scope declaration.
    UndeclaredPrefix,
    /// The same attribute appeared twice on one element.
    DuplicateAttribute,
    /// An entity reference was not one of the five predefined ones or a
    /// character reference.
    UnknownEntity,
    /// Trailing content after the document element.
    TrailingContent,
    /// The document had no root element.
    Empty,
}

impl XmlError {
    pub(crate) fn new(kind: ErrorKind, position: usize, detail: impl Into<String>) -> Self {
        XmlError {
            kind,
            position,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            ErrorKind::UnexpectedEof => "unexpected end of input",
            ErrorKind::Malformed => "malformed XML",
            ErrorKind::MismatchedTag => "mismatched end tag",
            ErrorKind::UndeclaredPrefix => "undeclared namespace prefix",
            ErrorKind::DuplicateAttribute => "duplicate attribute",
            ErrorKind::UnknownEntity => "unknown entity reference",
            ErrorKind::TrailingContent => "content after document element",
            ErrorKind::Empty => "no document element",
        };
        write!(f, "{what} at byte {}: {}", self.position, self.detail)
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_position_and_detail() {
        let e = XmlError::new(ErrorKind::MismatchedTag, 42, "expected </a>, found </b>");
        let s = e.to_string();
        assert!(s.contains("mismatched end tag"), "{s}");
        assert!(s.contains("42"), "{s}");
        assert!(s.contains("</b>"), "{s}");
    }

    #[test]
    fn errors_are_comparable() {
        let a = XmlError::new(ErrorKind::Empty, 0, "x");
        let b = XmlError::new(ErrorKind::Empty, 0, "x");
        assert_eq!(a, b);
    }
}
