//! Qualified names.

use crate::intern::{intern, Interned};
use std::fmt;

/// The namespace URI reserved for the `xml` prefix.
pub const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";
/// The namespace URI reserved for the `xmlns` prefix.
pub const XMLNS_NS: &str = "http://www.w3.org/2000/xmlns/";

/// An expanded XML name: a local part plus an optional namespace URI.
///
/// Prefixes are serialization detail and are *not* part of a `QName`'s
/// identity — two names with the same URI and local part compare equal
/// regardless of how a document spelled them. This is exactly the
/// equivalence the WS-* specs rely on, and what the paper's
/// message-format experiment (§V.4 category 2, "namespaces difference")
/// measures against.
///
/// Both parts are [`Interned`]: the well-known SOAP/WSA/WSE/WSN names
/// that appear on every message are allocated once per process, and
/// name equality is a pointer comparison instead of two string
/// comparisons. Construction from `&str` stays cheap (an interner
/// read-lock hit) and the parts still deref to `str`, so call sites
/// read exactly as they did when these were `String`s.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QName {
    /// Namespace URI, or `None` for names in no namespace.
    pub ns: Option<Interned>,
    /// Local part.
    pub local: Interned,
}

impl QName {
    /// A name in no namespace.
    pub fn local(local: impl AsRef<str>) -> Self {
        QName {
            ns: None,
            local: intern(local.as_ref()),
        }
    }

    /// A name qualified by a namespace URI.
    pub fn ns(ns: impl AsRef<str>, local: impl AsRef<str>) -> Self {
        QName {
            ns: Some(intern(ns.as_ref())),
            local: intern(local.as_ref()),
        }
    }

    /// True when this name has namespace `ns` and local part `local`.
    pub fn is(&self, ns: &str, local: &str) -> bool {
        self.local == local && self.ns.as_deref() == Some(ns)
    }

    /// Allocation-free comparison against an expanded name where the
    /// namespace may be absent — the general form of [`QName::is`] for
    /// detect/match call sites that handle no-namespace names too.
    pub fn matches(&self, ns: Option<&str>, local: &str) -> bool {
        self.local == local && self.ns.as_deref() == ns
    }

    /// Clark notation (`{uri}local`), handy in error messages and tests.
    ///
    /// Allocates; hot paths should use the allocation-free [`std::fmt::Display`]
    /// impl (which writes the same notation) or [`QName::matches`].
    pub fn clark(&self) -> String {
        self.to_string()
    }
}

/// Clark notation, written part by part — no intermediate `String`.
impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(ns) = &self.ns {
            write!(f, "{{{ns}}}")?;
        }
        f.write_str(&self.local)
    }
}

/// Is `c` valid as the first character of an XML name?
///
/// Deliberately covers the ASCII + common Unicode ranges; SOAP traffic
/// never strays beyond these.
pub fn is_name_start(c: char) -> bool {
    c == '_'
        || c.is_ascii_alphabetic()
        || ('\u{C0}'..='\u{D6}').contains(&c)
        || ('\u{D8}'..='\u{F6}').contains(&c)
        || ('\u{F8}'..='\u{2FF}').contains(&c)
        || ('\u{370}'..='\u{37D}').contains(&c)
        || ('\u{37F}'..='\u{1FFF}').contains(&c)
        || ('\u{200C}'..='\u{200D}').contains(&c)
        || ('\u{2070}'..='\u{218F}').contains(&c)
        || ('\u{2C00}'..='\u{2FEF}').contains(&c)
        || ('\u{3001}'..='\u{D7FF}').contains(&c)
        || ('\u{F900}'..='\u{FDCF}').contains(&c)
        || ('\u{FDF0}'..='\u{FFFD}').contains(&c)
}

/// Is `c` valid inside an XML name (after the first character)?
pub fn is_name_char(c: char) -> bool {
    is_name_start(c)
        || c == '-'
        || c == '.'
        || c.is_ascii_digit()
        || c == '\u{B7}'
        || ('\u{300}'..='\u{36F}').contains(&c)
        || ('\u{203F}'..='\u{2040}').contains(&c)
}

/// Split a lexical QName (`prefix:local` or `local`) into its parts.
///
/// Returns `(prefix, local)` where the prefix is `None` for unprefixed
/// names. Does not validate characters; callers do that where needed.
pub fn split_prefixed(raw: &str) -> (Option<&str>, &str) {
    match raw.find(':') {
        Some(i) => (Some(&raw[..i]), &raw[i + 1..]),
        None => (None, raw),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_nothing_but_uri_and_local() {
        assert_eq!(QName::ns("urn:a", "x"), QName::ns("urn:a", "x"));
        assert_ne!(QName::ns("urn:a", "x"), QName::ns("urn:b", "x"));
        assert_ne!(QName::ns("urn:a", "x"), QName::local("x"));
    }

    #[test]
    fn equal_names_share_interned_parts() {
        let a = QName::ns("urn:a", "x");
        let b = QName::ns("urn:a", "x");
        assert!(Interned::ptr_eq(&a.local, &b.local));
        assert!(Interned::ptr_eq(
            a.ns.as_ref().unwrap(),
            b.ns.as_ref().unwrap()
        ));
    }

    #[test]
    fn clark_notation() {
        assert_eq!(QName::ns("urn:a", "x").clark(), "{urn:a}x");
        assert_eq!(QName::local("x").clark(), "x");
        assert_eq!(QName::ns("urn:a", "x").to_string(), "{urn:a}x");
    }

    #[test]
    fn is_matcher() {
        let q = QName::ns("urn:a", "x");
        assert!(q.is("urn:a", "x"));
        assert!(!q.is("urn:a", "y"));
        assert!(!QName::local("x").is("urn:a", "x"));
    }

    #[test]
    fn matches_handles_no_namespace() {
        assert!(QName::local("x").matches(None, "x"));
        assert!(!QName::local("x").matches(Some("urn:a"), "x"));
        assert!(QName::ns("urn:a", "x").matches(Some("urn:a"), "x"));
        assert!(!QName::ns("urn:a", "x").matches(None, "x"));
    }

    #[test]
    fn split_prefixed_names() {
        assert_eq!(split_prefixed("a:b"), (Some("a"), "b"));
        assert_eq!(split_prefixed("b"), (None, "b"));
        assert_eq!(split_prefixed(":b"), (Some(""), "b"));
    }

    #[test]
    fn name_chars() {
        assert!(is_name_start('a'));
        assert!(is_name_start('_'));
        assert!(!is_name_start('-'));
        assert!(!is_name_start('1'));
        assert!(is_name_char('-'));
        assert!(is_name_char('1'));
        assert!(is_name_char('.'));
        assert!(!is_name_char(' '));
        assert!(!is_name_char('<'));
    }
}
