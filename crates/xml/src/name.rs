//! Qualified names.

use std::fmt;

/// The namespace URI reserved for the `xml` prefix.
pub const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";
/// The namespace URI reserved for the `xmlns` prefix.
pub const XMLNS_NS: &str = "http://www.w3.org/2000/xmlns/";

/// An expanded XML name: a local part plus an optional namespace URI.
///
/// Prefixes are serialization detail and are *not* part of a `QName`'s
/// identity — two names with the same URI and local part compare equal
/// regardless of how a document spelled them. This is exactly the
/// equivalence the WS-* specs rely on, and what the paper's
/// message-format experiment (§V.4 category 2, "namespaces difference")
/// measures against.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QName {
    /// Namespace URI, or `None` for names in no namespace.
    pub ns: Option<String>,
    /// Local part.
    pub local: String,
}

impl QName {
    /// A name in no namespace.
    pub fn local(local: impl Into<String>) -> Self {
        QName {
            ns: None,
            local: local.into(),
        }
    }

    /// A name qualified by a namespace URI.
    pub fn ns(ns: impl Into<String>, local: impl Into<String>) -> Self {
        QName {
            ns: Some(ns.into()),
            local: local.into(),
        }
    }

    /// True when this name has namespace `ns` and local part `local`.
    pub fn is(&self, ns: &str, local: &str) -> bool {
        self.local == local && self.ns.as_deref() == Some(ns)
    }

    /// Clark notation (`{uri}local`), handy in error messages and tests.
    pub fn clark(&self) -> String {
        match &self.ns {
            Some(ns) => format!("{{{ns}}}{}", self.local),
            None => self.local.clone(),
        }
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.clark())
    }
}

/// Is `c` valid as the first character of an XML name?
///
/// Deliberately covers the ASCII + common Unicode ranges; SOAP traffic
/// never strays beyond these.
pub fn is_name_start(c: char) -> bool {
    c == '_'
        || c.is_ascii_alphabetic()
        || ('\u{C0}'..='\u{D6}').contains(&c)
        || ('\u{D8}'..='\u{F6}').contains(&c)
        || ('\u{F8}'..='\u{2FF}').contains(&c)
        || ('\u{370}'..='\u{37D}').contains(&c)
        || ('\u{37F}'..='\u{1FFF}').contains(&c)
        || ('\u{200C}'..='\u{200D}').contains(&c)
        || ('\u{2070}'..='\u{218F}').contains(&c)
        || ('\u{2C00}'..='\u{2FEF}').contains(&c)
        || ('\u{3001}'..='\u{D7FF}').contains(&c)
        || ('\u{F900}'..='\u{FDCF}').contains(&c)
        || ('\u{FDF0}'..='\u{FFFD}').contains(&c)
}

/// Is `c` valid inside an XML name (after the first character)?
pub fn is_name_char(c: char) -> bool {
    is_name_start(c)
        || c == '-'
        || c == '.'
        || c.is_ascii_digit()
        || c == '\u{B7}'
        || ('\u{300}'..='\u{36F}').contains(&c)
        || ('\u{203F}'..='\u{2040}').contains(&c)
}

/// Split a lexical QName (`prefix:local` or `local`) into its parts.
///
/// Returns `(prefix, local)` where the prefix is `None` for unprefixed
/// names. Does not validate characters; callers do that where needed.
pub fn split_prefixed(raw: &str) -> (Option<&str>, &str) {
    match raw.find(':') {
        Some(i) => (Some(&raw[..i]), &raw[i + 1..]),
        None => (None, raw),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_nothing_but_uri_and_local() {
        assert_eq!(QName::ns("urn:a", "x"), QName::ns("urn:a", "x"));
        assert_ne!(QName::ns("urn:a", "x"), QName::ns("urn:b", "x"));
        assert_ne!(QName::ns("urn:a", "x"), QName::local("x"));
    }

    #[test]
    fn clark_notation() {
        assert_eq!(QName::ns("urn:a", "x").clark(), "{urn:a}x");
        assert_eq!(QName::local("x").clark(), "x");
    }

    #[test]
    fn is_matcher() {
        let q = QName::ns("urn:a", "x");
        assert!(q.is("urn:a", "x"));
        assert!(!q.is("urn:a", "y"));
        assert!(!QName::local("x").is("urn:a", "x"));
    }

    #[test]
    fn split_prefixed_names() {
        assert_eq!(split_prefixed("a:b"), (Some("a"), "b"));
        assert_eq!(split_prefixed("b"), (None, "b"));
        assert_eq!(split_prefixed(":b"), (Some(""), "b"));
    }

    #[test]
    fn name_chars() {
        assert!(is_name_start('a'));
        assert!(is_name_start('_'));
        assert!(!is_name_start('-'));
        assert!(!is_name_start('1'));
        assert!(is_name_char('-'));
        assert!(is_name_char('1'));
        assert!(is_name_char('.'));
        assert!(!is_name_char(' '));
        assert!(!is_name_char('<'));
    }
}
