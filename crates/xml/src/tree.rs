//! The element tree: [`Element`], [`Node`], [`Attribute`],
//! [`SharedElement`].

use crate::intern::{intern, Interned};
use crate::name::QName;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A node in element content.
#[derive(Debug, Clone)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// An immutable element subtree shared between documents, with a
    /// cached serialization (see [`SharedElement`]).
    Shared(Arc<SharedElement>),
    /// Character data (entities already expanded).
    Text(String),
    /// A CDATA section; identical to text for matching purposes but
    /// round-trips as `<![CDATA[...]]>`.
    CData(String),
    /// A comment.
    Comment(String),
    /// A processing instruction.
    Pi {
        /// PI target.
        target: String,
        /// PI data (may be empty).
        data: String,
    },
}

impl Node {
    /// The element inside this node, if it is one (including shared
    /// subtrees).
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Shared(s) => Some(s.element()),
            _ => None,
        }
    }

    /// Mutable variant of [`Node::as_element`].
    ///
    /// A [`Node::Shared`] subtree is immutable by construction, so this
    /// returns `None` for it; callers that need to mutate must clone
    /// the inner element into a regular [`Node::Element`] first.
    pub fn as_element_mut(&mut self) -> Option<&mut Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// The textual content if this node is text or CDATA.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) | Node::CData(t) => Some(t),
            _ => None,
        }
    }
}

/// Equality treats a shared subtree exactly like the element it wraps:
/// sharing is a serialization optimization, not a semantic difference.
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Node::Text(a), Node::Text(b)) => a == b,
            (Node::CData(a), Node::CData(b)) => a == b,
            (Node::Comment(a), Node::Comment(b)) => a == b,
            (
                Node::Pi {
                    target: at,
                    data: ad,
                },
                Node::Pi {
                    target: bt,
                    data: bd,
                },
            ) => at == bt && ad == bd,
            _ => match (self.as_element(), other.as_element()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }
}

/// Counts every *actual* serialization of a [`SharedElement`] (cache
/// misses). The render-cache tests use this to prove a payload is
/// serialized once per event rather than once per subscriber.
static SHARED_SERIALIZATIONS: AtomicU64 = AtomicU64::new(0);

/// Total number of [`SharedElement`] serializations performed by this
/// process (monotonic; cache hits do not count).
pub fn shared_serialization_count() -> u64 {
    SHARED_SERIALIZATIONS.load(Ordering::Relaxed)
}

/// An immutable element subtree that can be spliced into many
/// documents, serializing at most once.
///
/// The cached form is the *standalone* compact serialization: every
/// namespace the subtree uses is declared within it, so the writer can
/// splice the cached bytes into any compact document where no default
/// namespace is in force (the one binding that could capture the
/// subtree's unprefixed names). In pretty-print mode, or under an
/// active default namespace, the writer falls back to recursively
/// writing the wrapped element.
#[derive(Debug)]
pub struct SharedElement {
    element: Element,
    xml: OnceLock<String>,
}

impl SharedElement {
    /// Wrap an element for sharing.
    pub fn new(element: Element) -> Arc<Self> {
        Arc::new(SharedElement {
            element,
            xml: OnceLock::new(),
        })
    }

    /// The wrapped element.
    pub fn element(&self) -> &Element {
        &self.element
    }

    /// The standalone compact serialization, rendered on first use and
    /// cached for the lifetime of the subtree.
    pub fn xml(&self) -> &str {
        self.xml.get_or_init(|| {
            SHARED_SERIALIZATIONS.fetch_add(1, Ordering::Relaxed);
            crate::writer::to_string(&self.element)
        })
    }

    /// Byte length of the cached serialization — a capacity hint for
    /// callers sizing an output buffer that will embed this subtree
    /// (forces the one-time serialization if it has not happened yet).
    pub fn serialized_len(&self) -> usize {
        self.xml().len()
    }
}

impl PartialEq for SharedElement {
    fn eq(&self, other: &Self) -> bool {
        self.element == other.element
    }
}

/// An attribute: expanded name, original prefix (for round-tripping) and
/// value with entities expanded.
///
/// Equality ignores `prefix_hint`: two attributes are equal when their
/// expanded names and values are — prefixes are serialization detail.
#[derive(Debug, Clone)]
pub struct Attribute {
    /// Expanded name. Per the Namespaces spec, unprefixed attributes are
    /// in *no* namespace (they do not inherit the default namespace).
    pub name: QName,
    /// The prefix the attribute was written with, kept as a
    /// serialization hint.
    pub prefix_hint: Option<Interned>,
    /// Attribute value, entities expanded.
    pub value: String,
}

/// An XML element.
///
/// Namespace *declarations* are not stored as attributes; the parser
/// resolves them into the expanded [`QName`]s and records the original
/// prefixes as hints, and the writer re-synthesizes declarations. This
/// keeps the model canonical: two documents that differ only in prefix
/// spelling produce identical trees, which is the footing the §V.4
/// message-diff experiment needs. Accordingly, `Element` equality
/// ignores the prefix hints.
#[derive(Debug, Clone)]
pub struct Element {
    /// Expanded element name.
    pub name: QName,
    /// The prefix this element was written with (or should be written
    /// with); `None` requests the default namespace or no prefix.
    pub prefix_hint: Option<Interned>,
    /// Attributes in document order.
    pub attrs: Vec<Attribute>,
    /// Children in document order.
    pub children: Vec<Node>,
}

impl PartialEq for Attribute {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.value == other.value
    }
}

impl PartialEq for Element {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.attrs == other.attrs && self.children == other.children
    }
}

impl Element {
    /// Create an empty element with the given expanded name.
    pub fn new(name: QName) -> Self {
        Element {
            name,
            prefix_hint: None,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Create an element in namespace `ns` with a preferred prefix.
    ///
    /// This is the constructor the WS-* codecs use: each spec mandates a
    /// namespace and conventionally a prefix (`wse`, `wsnt`, `wsa`...).
    pub fn ns(ns: impl AsRef<str>, local: impl AsRef<str>, prefix: impl AsRef<str>) -> Self {
        Element {
            name: QName::ns(ns, local),
            prefix_hint: Some(intern(prefix.as_ref())),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Create an element in no namespace.
    pub fn local(local: impl AsRef<str>) -> Self {
        Element::new(QName::local(local))
    }

    // ---- builder-style composition -------------------------------------

    /// Add an attribute in no namespace (builder style).
    pub fn with_attr(mut self, local: impl AsRef<str>, value: impl Into<String>) -> Self {
        self.set_attr(QName::local(local), value);
        self
    }

    /// Add a namespaced attribute (builder style).
    pub fn with_attr_ns(
        mut self,
        ns: impl AsRef<str>,
        local: impl AsRef<str>,
        prefix: impl AsRef<str>,
        value: impl Into<String>,
    ) -> Self {
        self.attrs.push(Attribute {
            name: QName::ns(ns, local),
            prefix_hint: Some(intern(prefix.as_ref())),
            value: value.into(),
        });
        self
    }

    /// Add a child element (builder style).
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Add a text child (builder style).
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Set (replace or append) an attribute by expanded name.
    pub fn set_attr(&mut self, name: QName, value: impl Into<String>) {
        let value = value.into();
        if let Some(a) = self.attrs.iter_mut().find(|a| a.name == name) {
            a.value = value;
        } else {
            self.attrs.push(Attribute {
                name,
                prefix_hint: None,
                value,
            });
        }
    }

    /// Append a child element.
    pub fn push(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Append a text node.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    /// Append a shared child subtree, splicing its cached serialization
    /// instead of deep-copying the tree.
    pub fn push_shared(&mut self, child: Arc<SharedElement>) {
        self.children.push(Node::Shared(child));
    }

    // ---- accessors ------------------------------------------------------

    /// Value of the attribute with local name `local` in no namespace.
    pub fn attr(&self, local: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|a| a.name.ns.is_none() && a.name.local == local)
            .map(|a| a.value.as_str())
    }

    /// Value of the attribute with expanded name (`ns`, `local`).
    pub fn attr_ns(&self, ns: &str, local: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|a| a.name.is(ns, local))
            .map(|a| a.value.as_str())
    }

    /// Iterator over child elements in document order.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Mutable iterator over child elements.
    pub fn elements_mut(&mut self) -> impl Iterator<Item = &mut Element> {
        self.children.iter_mut().filter_map(Node::as_element_mut)
    }

    /// First child element with the given local name (any namespace).
    pub fn child(&self, local: &str) -> Option<&Element> {
        self.elements().find(|e| e.name.local == local)
    }

    /// First child element with the given expanded name.
    pub fn child_ns(&self, ns: &str, local: &str) -> Option<&Element> {
        self.elements().find(|e| e.name.is(ns, local))
    }

    /// All child elements with the given expanded name.
    pub fn children_ns<'a>(
        &'a self,
        ns: &'a str,
        local: &'a str,
    ) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name.is(ns, local))
    }

    /// Concatenated text of the *direct* text/CDATA children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let Some(t) = c.as_text() {
                out.push_str(t);
            }
        }
        out
    }

    /// Concatenated text of all descendant text nodes, in document
    /// order — the XPath `string()` value of the element.
    pub fn deep_text(&self) -> String {
        fn walk(e: &Element, out: &mut String) {
            for c in &e.children {
                if let Some(t) = c.as_text() {
                    out.push_str(t);
                } else if let Some(child) = c.as_element() {
                    walk(child, out);
                }
            }
        }
        let mut out = String::new();
        walk(self, &mut out);
        out
    }

    /// Depth-first search for the first descendant (not self) with the
    /// given expanded name.
    pub fn descendant_ns(&self, ns: &str, local: &str) -> Option<&Element> {
        for e in self.elements() {
            if e.name.is(ns, local) {
                return Some(e);
            }
            if let Some(found) = e.descendant_ns(ns, local) {
                return Some(found);
            }
        }
        None
    }

    /// Number of element children.
    pub fn element_count(&self) -> usize {
        self.elements().count()
    }

    /// True when the element has no children at all.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::ns("urn:s", "root", "s")
            .with_attr("a", "1")
            .with_attr_ns("urn:x", "b", "x", "2")
            .with_child(Element::local("kid").with_text("hello"))
            .with_child(Element::ns("urn:s", "kid", "s").with_text(" world"))
    }

    #[test]
    fn builder_and_accessors() {
        let e = sample();
        assert_eq!(e.attr("a"), Some("1"));
        assert_eq!(
            e.attr("b"),
            None,
            "namespaced attr must not match plain lookup"
        );
        assert_eq!(e.attr_ns("urn:x", "b"), Some("2"));
        assert_eq!(e.element_count(), 2);
        assert_eq!(e.child("kid").unwrap().text(), "hello");
        assert_eq!(e.child_ns("urn:s", "kid").unwrap().text(), " world");
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::local("e");
        e.set_attr(QName::local("k"), "1");
        e.set_attr(QName::local("k"), "2");
        assert_eq!(e.attrs.len(), 1);
        assert_eq!(e.attr("k"), Some("2"));
    }

    #[test]
    fn deep_text_concatenates_in_order() {
        let e = sample();
        assert_eq!(e.deep_text(), "hello world");
    }

    #[test]
    fn descendant_search() {
        let tree = Element::local("a").with_child(
            Element::local("b").with_child(Element::ns("urn:d", "deep", "d").with_text("x")),
        );
        assert_eq!(tree.descendant_ns("urn:d", "deep").unwrap().text(), "x");
        assert!(tree.descendant_ns("urn:d", "nope").is_none());
    }

    #[test]
    fn children_ns_filters() {
        let e = sample();
        assert_eq!(e.children_ns("urn:s", "kid").count(), 1);
    }

    #[test]
    fn text_ignores_elements() {
        let e = Element::local("e")
            .with_text("a")
            .with_child(Element::local("x").with_text("IGNORED"))
            .with_text("b");
        assert_eq!(e.text(), "ab");
    }
}
