//! Thread-local reusable serialization buffers.
//!
//! Fan-out delivery serializes thousands of envelopes per second from a
//! fixed set of worker threads; allocating (and immediately freeing) a
//! fresh ~1KB `String` per serialization is pure churn. [`with_buffer`]
//! hands callers a cleared `String` recycled per thread, so the steady
//! state of the push workers and the transport send path performs zero
//! output-buffer allocations.
//!
//! The pool is deliberately tiny and unsynchronized: a thread-local
//! stack of at most `MAX_POOLED` buffers, each capped at
//! `MAX_RETAINED_CAPACITY` so one pathological message cannot pin
//! megabytes per thread forever.

use std::cell::RefCell;

/// Maximum buffers retained per thread. Serialization nests at most a
/// few levels deep (an envelope embedding a pre-rendered body), so a
/// small stack suffices.
const MAX_POOLED: usize = 8;

/// Buffers that grew beyond this are dropped instead of pooled.
const MAX_RETAINED_CAPACITY: usize = 1 << 20;

thread_local! {
    static POOL: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a cleared, reusable `String` of at least
/// `capacity_hint` bytes, returning `f`'s result.
///
/// The buffer comes from (and returns to) a thread-local pool;
/// re-entrant use is fine — nested calls simply draw further buffers.
/// Callers that need the serialized text beyond the closure should
/// extract what they need (length, a hash, an owned copy) inside it.
pub fn with_buffer<R>(capacity_hint: usize, f: impl FnOnce(&mut String) -> R) -> R {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    if buf.capacity() < capacity_hint {
        buf.reserve(capacity_hint - buf.len());
    }
    let out = f(&mut buf);
    if buf.capacity() <= MAX_RETAINED_CAPACITY {
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_POOLED {
                pool.push(buf);
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_is_cleared_and_reused() {
        with_buffer(0, |b| b.push_str("first use"));
        with_buffer(0, |b| {
            assert!(b.is_empty(), "pooled buffer must come back cleared");
            assert!(b.capacity() >= "first use".len(), "capacity is retained");
        });
    }

    #[test]
    fn capacity_hint_is_honored() {
        with_buffer(4096, |b| assert!(b.capacity() >= 4096));
    }

    #[test]
    fn nested_use_draws_distinct_buffers() {
        with_buffer(0, |outer| {
            outer.push_str("outer");
            with_buffer(0, |inner| {
                assert!(inner.is_empty());
                inner.push_str("inner");
            });
            assert_eq!(outer, "outer");
        });
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        with_buffer(MAX_RETAINED_CAPACITY * 2, |b| {
            b.push('x');
        });
        // The next buffer must not arrive with the huge capacity.
        with_buffer(0, |b| assert!(b.capacity() <= MAX_RETAINED_CAPACITY));
    }

    #[test]
    fn returns_closure_result() {
        let n = with_buffer(16, |b| {
            b.push_str("abc");
            b.len()
        });
        assert_eq!(n, 3);
    }
}
