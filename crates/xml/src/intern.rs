//! Global string interning for XML names.
//!
//! A SOAP broker sees the same handful of names on every message: the
//! envelope namespaces, the WS-Addressing header names, the WSE/WSN
//! operation vocabularies, and the application payload's tags. The seed
//! allocated a fresh `String` for every namespace URI, local name and
//! prefix on every parse and every tree construction — the dominant
//! allocation source on the parse→render→serialize hot path.
//!
//! [`Interned`] replaces those `String`s with `Arc<str>` handles drawn
//! from one process-wide table: each distinct name is allocated once,
//! every later occurrence is a reference-count bump, and equality of
//! two interned names is (in the overwhelmingly common case) a single
//! pointer comparison.
//!
//! The table is sharded to keep writer contention off the hot path:
//! lookups take a per-shard read lock (shared, so concurrent parsers
//! never serialize against each other), and only the *first* occurrence
//! of a name in the process takes the shard's write lock. The
//! well-known SOAP/WSA/WSE/WSN names are pre-seeded so even that first
//! occurrence is a read-path hit.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, OnceLock, RwLock};

/// Number of interner shards. A power of two so the shard pick is a
/// mask; 16 is far more shards than the broker has simultaneously
/// *inserting* threads, so write-lock collisions are rare even under
/// the concurrent-interner stress test.
const SHARDS: usize = 16;

/// Names every WS-* message carries, seeded at table construction so
/// the first message a process parses already takes the read path.
const WELL_KNOWN: &[&str] = &[
    "",
    // SOAP envelope vocabulary.
    "http://schemas.xmlsoap.org/soap/envelope/",
    "http://www.w3.org/2003/05/soap-envelope",
    "Envelope",
    "Header",
    "Body",
    "Fault",
    "mustUnderstand",
    "soap",
    "s",
    // WS-Addressing.
    "http://schemas.xmlsoap.org/ws/2003/03/addressing",
    "http://schemas.xmlsoap.org/ws/2004/08/addressing",
    "http://www.w3.org/2005/08/addressing",
    "wsa",
    "To",
    "From",
    "ReplyTo",
    "Action",
    "MessageID",
    "RelatesTo",
    "Address",
    "ReferenceParameters",
    "ReferenceProperties",
    "EndpointReference",
    // WS-Eventing.
    "http://schemas.xmlsoap.org/ws/2004/01/eventing",
    "http://schemas.xmlsoap.org/ws/2004/08/eventing",
    "wse",
    "Subscribe",
    "SubscribeResponse",
    "SubscriptionManager",
    "SubscriptionEnd",
    "Identifier",
    "Expires",
    "Delivery",
    "NotifyTo",
    "EndTo",
    "Filter",
    "Mode",
    "Dialect",
    "Renew",
    "RenewResponse",
    "Unsubscribe",
    "GetStatus",
    "Notifications",
    // WS-Notification.
    "http://docs.oasis-open.org/wsn/2004/06/wsn-WS-BaseNotification-1.0",
    "http://docs.oasis-open.org/wsn/b-2",
    "http://docs.oasis-open.org/wsn/br-2",
    "wsnt",
    "Notify",
    "NotificationMessage",
    "Topic",
    "Message",
    "ProducerReference",
    "SubscriptionReference",
    "ConsumerReference",
    "TopicExpression",
    "MessageContent",
    "UseRaw",
    "GetCurrentMessage",
    "GetMessages",
    "CurrentTime",
    "TerminationTime",
    // The reserved XML namespaces and prefixes.
    crate::name::XML_NS,
    crate::name::XMLNS_NS,
    "xml",
    "xmlns",
    "lang",
    // Broker extension vocabulary and synthesized prefixes.
    "urn:ws-messenger:broker",
    "wsm",
    "ns0",
    "ns1",
    // WS-Topics dialect URIs and the topic vocabulary the broker's
    // trie index keys on. Trie edges are HashMap<Interned, _>, so
    // seeding the common topic words lets both Subscribe-time edge
    // creation and publish-time lookups hit the pointer-equality fast
    // path instead of taking a shard write lock on first use.
    "http://docs.oasis-open.org/wsn/t-1",
    "http://docs.oasis-open.org/wsn/t-1/TopicExpression/Simple",
    "http://docs.oasis-open.org/wsn/t-1/TopicExpression/Concrete",
    "http://docs.oasis-open.org/wsn/t-1/TopicExpression/Full",
    "wstop",
    "storms",
    "tornado",
    "hail",
    "traffic",
    "jobs",
    "transfers",
    "gridftp",
    "compute",
    "started",
    "finished",
    "failed",
    "status",
    "alerts",
    "weather",
    "experiments",
    "wsmsg",
];

struct Interner {
    shards: [RwLock<HashSet<Arc<str>>>; SHARDS],
}

static INTERNER: OnceLock<Interner> = OnceLock::new();

fn interner() -> &'static Interner {
    INTERNER.get_or_init(|| {
        let it = Interner {
            shards: std::array::from_fn(|_| RwLock::new(HashSet::new())),
        };
        for s in WELL_KNOWN {
            let shard = &it.shards[shard_of(s)];
            shard.write().unwrap().insert(Arc::from(*s));
        }
        it
    })
}

fn shard_of(s: &str) -> usize {
    // FNV-1a over the bytes: fast, decent spread, and independent of
    // the per-HashSet SipHash keys so one bad distribution cannot
    // degrade both levels at once.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) & (SHARDS - 1)
}

/// Intern `s`, returning the process-wide shared handle for it.
///
/// The first call for a given string takes a shard write lock and
/// allocates once; every later call (from any thread) takes the shard
/// read lock and bumps a reference count.
pub fn intern(s: &str) -> Interned {
    let shard = &interner().shards[shard_of(s)];
    if let Some(hit) = shard.read().unwrap().get(s) {
        return Interned(Arc::clone(hit));
    }
    let mut table = shard.write().unwrap();
    // Double-checked: another thread may have inserted between our
    // read unlock and write lock.
    if let Some(hit) = table.get(s) {
        return Interned(Arc::clone(hit));
    }
    let arc: Arc<str> = Arc::from(s);
    table.insert(Arc::clone(&arc));
    Interned(arc)
}

/// Number of distinct strings currently interned, across all shards.
///
/// Used by the stress tests to prove the table stays bounded: interning
/// the same name set from many threads must not grow it past the
/// number of distinct names.
pub fn interned_count() -> usize {
    interner()
        .shards
        .iter()
        .map(|s| s.read().unwrap().len())
        .sum()
}

/// An interned string: an `Arc<str>` drawn from the global table.
///
/// Two `Interned` values produced from equal strings always share one
/// allocation, so equality short-circuits on the pointer. The type
/// dereferences to `str`, compares against `&str`/`String` directly,
/// and orders/hashes by content, so it drops into `String`'s place in
/// the tree model without changing any observable behavior.
#[derive(Clone)]
pub struct Interned(Arc<str>);

impl Interned {
    /// The interned text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Do two handles share one table entry? Always true for equal
    /// strings that both came from [`intern`]; the general equality
    /// below falls back to content comparison anyway.
    pub fn ptr_eq(a: &Interned, b: &Interned) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl Deref for Interned {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Interned {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Interned {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Interned {
    fn eq(&self, other: &Self) -> bool {
        // Pointer compare first: interning guarantees equal strings
        // share storage, so this is the path taken by every name
        // comparison on the hot path. The content fallback keeps `Eq`
        // honest even for hypothetical handles from different tables.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Interned {}

impl PartialEq<str> for Interned {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Interned {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for Interned {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl PartialEq<Interned> for str {
    fn eq(&self, other: &Interned) -> bool {
        self == &*other.0
    }
}

impl PartialEq<Interned> for &str {
    fn eq(&self, other: &Interned) -> bool {
        *self == &*other.0
    }
}

impl PartialEq<Interned> for String {
    fn eq(&self, other: &Interned) -> bool {
        self.as_str() == &*other.0
    }
}

// Content hash, consistent with `Borrow<str>` and with content
// equality, so `HashMap<Interned, _>` lookups by `&str` work.
impl Hash for Interned {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (*self.0).hash(state)
    }
}

impl PartialOrd for Interned {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Interned {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(&other.0)
        }
    }
}

impl fmt::Display for Interned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Interned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

impl From<&str> for Interned {
    fn from(s: &str) -> Self {
        intern(s)
    }
}

impl From<&String> for Interned {
    fn from(s: &String) -> Self {
        intern(s)
    }
}

impl From<String> for Interned {
    fn from(s: String) -> Self {
        intern(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_strings_share_storage() {
        let a = intern("urn:intern-test:shared");
        let b = intern("urn:intern-test:shared");
        assert!(Interned::ptr_eq(&a, &b));
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_strings_differ() {
        assert_ne!(intern("urn:intern-test:a"), intern("urn:intern-test:b"));
    }

    #[test]
    fn str_comparisons_work_both_ways() {
        let i = intern("Envelope");
        assert_eq!(i, "Envelope");
        assert_eq!("Envelope", i);
        assert_eq!(i, String::from("Envelope"));
        assert_ne!(i, "Body");
    }

    #[test]
    fn orders_and_hashes_by_content() {
        use std::collections::HashMap;
        assert!(intern("a") < intern("b"));
        assert_eq!(intern("x").cmp(&intern("x")), std::cmp::Ordering::Equal);
        let mut m: HashMap<Interned, u32> = HashMap::new();
        m.insert(intern("key"), 7);
        // Borrow<str> lets callers look up without constructing a handle.
        assert_eq!(m.get("key"), Some(&7));
    }

    #[test]
    fn reinterning_does_not_grow_the_table() {
        let _ = intern("urn:intern-test:growth");
        let before = interned_count();
        for _ in 0..100 {
            let _ = intern("urn:intern-test:growth");
        }
        assert_eq!(interned_count(), before);
    }

    #[test]
    fn well_known_names_are_preseeded() {
        // Seeded names must resolve to the seeded entry, not a new one.
        let before = interned_count();
        let _ = intern("http://www.w3.org/2003/05/soap-envelope");
        let _ = intern("Envelope");
        let _ = intern("");
        assert_eq!(interned_count(), before);
    }

    #[test]
    fn display_and_debug_delegate_to_str() {
        let i = intern("a<b");
        assert_eq!(format!("{i}"), "a<b");
        assert_eq!(format!("{i:?}"), "\"a<b\"");
    }
}
