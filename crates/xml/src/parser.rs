//! A hand-written, non-validating, namespace-aware XML parser.
//!
//! Scope: everything SOAP traffic contains — elements, attributes,
//! namespace declarations, text with the predefined entities and
//! character references, CDATA, comments, processing instructions and an
//! (ignored) XML declaration / DOCTYPE. No DTD processing beyond
//! skipping, no external entities (which is also the secure choice).

use crate::error::{ErrorKind, XmlError, XmlResult};
use crate::escape::unescape;
use crate::intern::{intern, Interned};
use crate::name::{is_name_char, is_name_start, split_prefixed, QName, XML_NS};
use crate::tree::{Attribute, Element, Node};
use std::borrow::Cow;

/// Maximum element nesting depth accepted by [`parse`].
///
/// SOAP messages are shallow; a depth bound turns adversarial
/// deeply-nested documents from a stack overflow into a parse error.
pub const MAX_DEPTH: usize = 256;

/// Parse a complete XML document and return its document element.
///
/// Leading/trailing comments, PIs and whitespace around the document
/// element are accepted and discarded; anything else outside the root is
/// an error.
pub fn parse(input: &str) -> XmlResult<Element> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
        scopes: Vec::new(),
        depth: 0,
    };
    p.skip_prolog()?;
    if p.at_end() {
        return Err(p.err(ErrorKind::Empty, "input contains no element"));
    }
    let root = p.parse_element()?;
    p.skip_misc()?;
    if !p.at_end() {
        return Err(p.err(
            ErrorKind::TrailingContent,
            "unexpected content after document element",
        ));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    /// In-scope namespace declarations, innermost last:
    /// `(prefix, uri, depth_marker)`. A frame is popped by truncating to
    /// the length recorded when the element was entered. Both parts are
    /// interned: the same prefixes and URIs recur on every message, so
    /// pushing a scope is two reference-count bumps, not two `String`s.
    scopes: Vec<(Option<Interned>, Interned)>,
}

/// Raw attribute before namespace resolution. The value borrows from
/// the input unless entity expansion forced a copy.
struct RawAttr<'a> {
    prefix: Option<&'a str>,
    local: &'a str,
    value: Cow<'a, str>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, kind: ErrorKind, detail: impl Into<String>) -> XmlError {
        XmlError::new(kind, self.pos, detail)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, s: &str) -> XmlResult<()> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else if self.at_end() {
            Err(self.err(ErrorKind::UnexpectedEof, format!("expected `{s}`")))
        } else {
            let got: String = self.input[self.pos..].chars().take(12).collect();
            Err(self.err(
                ErrorKind::Malformed,
                format!("expected `{s}`, found `{got}`"),
            ))
        }
    }

    /// Skip `<?xml ...?>`, DOCTYPE, comments, PIs and whitespace before
    /// the document element.
    fn skip_prolog(&mut self) -> XmlResult<()> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            self.skip_until("?>")?;
        }
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skip comments/PIs/whitespace after the document element.
    fn skip_misc(&mut self) -> XmlResult<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> XmlResult<()> {
        match self.input[self.pos..].find(end) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(self.err(
                ErrorKind::UnexpectedEof,
                format!("unterminated construct, expected `{end}`"),
            )),
        }
    }

    /// Skip a DOCTYPE declaration, honouring a bracketed internal subset.
    fn skip_doctype(&mut self) -> XmlResult<()> {
        let mut depth = 0usize;
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => return Ok(()),
                _ => {}
            }
        }
        Err(self.err(ErrorKind::UnexpectedEof, "unterminated DOCTYPE"))
    }

    fn read_name(&mut self) -> XmlResult<&'a str> {
        let start = self.pos;
        let mut chars = self.input[self.pos..].char_indices();
        match chars.next() {
            Some((_, c)) if is_name_start(c) || c == ':' => {}
            _ => return Err(self.err(ErrorKind::Malformed, "expected a name")),
        }
        let mut end = self.input.len();
        for (i, c) in chars {
            if !(is_name_char(c) || c == ':') {
                end = self.pos + i;
                break;
            }
        }
        self.pos = end;
        Ok(&self.input[start..end])
    }

    fn resolve(&self, prefix: Option<&str>, for_attr: bool) -> XmlResult<Option<Interned>> {
        match prefix {
            Some("xml") => Ok(Some(intern(XML_NS))),
            Some(p) => {
                for (pref, uri) in self.scopes.iter().rev() {
                    if pref.as_deref() == Some(p) {
                        if uri.is_empty() {
                            return Err(XmlError::new(
                                ErrorKind::UndeclaredPrefix,
                                self.pos,
                                format!("prefix `{p}` undeclared (empty URI)"),
                            ));
                        }
                        return Ok(Some(uri.clone()));
                    }
                }
                Err(XmlError::new(
                    ErrorKind::UndeclaredPrefix,
                    self.pos,
                    format!("prefix `{p}`"),
                ))
            }
            None => {
                if for_attr {
                    // Unprefixed attributes are in no namespace.
                    return Ok(None);
                }
                for (pref, uri) in self.scopes.iter().rev() {
                    if pref.is_none() {
                        return Ok(if uri.is_empty() {
                            None
                        } else {
                            Some(uri.clone())
                        });
                    }
                }
                Ok(None)
            }
        }
    }

    fn parse_element(&mut self) -> XmlResult<Element> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(
                ErrorKind::Malformed,
                format!("element nesting exceeds {MAX_DEPTH}"),
            ));
        }
        let out = self.parse_element_inner();
        self.depth -= 1;
        out
    }

    fn parse_element_inner(&mut self) -> XmlResult<Element> {
        self.expect("<")?;
        let raw_name = self.read_name()?;
        let name_pos = self.pos;

        // Collect raw attributes and namespace declarations.
        let scope_base = self.scopes.len();
        let mut raw_attrs: Vec<RawAttr<'a>> = Vec::new();
        let self_closing;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    self_closing = true;
                    break;
                }
                Some(b'>') => {
                    self.pos += 1;
                    self_closing = false;
                    break;
                }
                Some(_) => {
                    let attr_pos = self.pos;
                    let raw = self.read_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.read_attr_value()?;
                    let (prefix, local) = split_prefixed(raw);
                    if prefix == Some("xmlns") {
                        self.scopes.push((Some(intern(local)), intern(&value)));
                    } else if prefix.is_none() && local == "xmlns" {
                        self.scopes.push((None, intern(&value)));
                    } else {
                        raw_attrs.push(RawAttr {
                            prefix,
                            local,
                            value,
                            pos: attr_pos,
                        });
                    }
                }
                None => return Err(self.err(ErrorKind::UnexpectedEof, "inside start tag")),
            }
        }

        // Resolve names now that the element's own declarations are in scope.
        let (eprefix, elocal) = split_prefixed(raw_name);
        let ens = self.resolve(eprefix, false).map_err(|mut e| {
            e.position = name_pos;
            e
        })?;
        let mut element = Element {
            name: QName {
                ns: ens,
                local: intern(elocal),
            },
            prefix_hint: eprefix.map(intern),
            attrs: Vec::with_capacity(raw_attrs.len()),
            children: Vec::new(),
        };
        for ra in raw_attrs {
            let ns = self.resolve(ra.prefix, true).map_err(|mut e| {
                e.position = ra.pos;
                e
            })?;
            let name = QName {
                ns,
                local: intern(ra.local),
            };
            if element.attrs.iter().any(|a| a.name == name) {
                return Err(XmlError::new(
                    ErrorKind::DuplicateAttribute,
                    ra.pos,
                    name.clark(),
                ));
            }
            element.attrs.push(Attribute {
                name,
                prefix_hint: ra.prefix.map(intern),
                value: ra.value.into_owned(),
            });
        }

        if !self_closing {
            self.parse_content(&mut element, raw_name)?;
        }
        self.scopes.truncate(scope_base);
        Ok(element)
    }

    fn read_attr_value(&mut self) -> XmlResult<Cow<'a, str>> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err(ErrorKind::Malformed, "expected quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        match self.input[self.pos..].find(quote as char) {
            Some(i) => {
                let raw = &self.input[start..start + i];
                self.pos = start + i + 1;
                unescape(raw, start)
            }
            None => Err(self.err(ErrorKind::UnexpectedEof, "unterminated attribute value")),
        }
    }

    fn parse_content(&mut self, parent: &mut Element, raw_name: &str) -> XmlResult<()> {
        loop {
            if self.at_end() {
                return Err(self.err(ErrorKind::UnexpectedEof, format!("inside <{raw_name}>")));
            }
            if self.starts_with("</") {
                self.pos += 2;
                let end_name = self.read_name()?;
                if end_name != raw_name {
                    return Err(self.err(
                        ErrorKind::MismatchedTag,
                        format!("expected </{raw_name}>, found </{end_name}>"),
                    ));
                }
                self.skip_ws();
                self.expect(">")?;
                return Ok(());
            } else if self.starts_with("<![CDATA[") {
                self.pos += 9;
                let start = self.pos;
                match self.input[self.pos..].find("]]>") {
                    Some(i) => {
                        parent
                            .children
                            .push(Node::CData(self.input[start..start + i].to_string()));
                        self.pos = start + i + 3;
                    }
                    None => return Err(self.err(ErrorKind::UnexpectedEof, "unterminated CDATA")),
                }
            } else if self.starts_with("<!--") {
                self.pos += 4;
                let start = self.pos;
                match self.input[self.pos..].find("-->") {
                    Some(i) => {
                        parent
                            .children
                            .push(Node::Comment(self.input[start..start + i].to_string()));
                        self.pos = start + i + 3;
                    }
                    None => return Err(self.err(ErrorKind::UnexpectedEof, "unterminated comment")),
                }
            } else if self.starts_with("<?") {
                self.pos += 2;
                let target = self.read_name()?.to_string();
                let start = self.pos;
                match self.input[self.pos..].find("?>") {
                    Some(i) => {
                        let data = self.input[start..start + i].trim().to_string();
                        parent.children.push(Node::Pi { target, data });
                        self.pos = start + i + 2;
                    }
                    None => {
                        return Err(self.err(
                            ErrorKind::UnexpectedEof,
                            "unterminated processing instruction",
                        ))
                    }
                }
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                parent.children.push(Node::Element(child));
            } else {
                // Text run up to the next '<'.
                let start = self.pos;
                let rel = self.input[self.pos..]
                    .find('<')
                    .unwrap_or(self.input.len() - self.pos);
                let raw = &self.input[start..start + rel];
                self.pos = start + rel;
                let text = unescape(raw, start)?;
                if !text.is_empty() {
                    parent.children.push(Node::Text(text.into_owned()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_document() {
        let e = parse("<r/>").unwrap();
        assert_eq!(e.name, QName::local("r"));
        assert!(e.is_empty());
    }

    #[test]
    fn xml_decl_doctype_comments_pis_in_prolog() {
        let e = parse(
            "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n<!-- hi --><!DOCTYPE r [ <!ELEMENT r ANY> ]>\n<?pi data?><r/><!-- bye -->",
        )
        .unwrap();
        assert_eq!(e.name.local, "r");
    }

    #[test]
    fn default_namespace_applies_to_elements_not_attrs() {
        let e = parse(r#"<r xmlns="urn:d" a="1"><c/></r>"#).unwrap();
        assert_eq!(e.name, QName::ns("urn:d", "r"));
        assert_eq!(
            e.attrs[0].name,
            QName::local("a"),
            "attrs do not take default ns"
        );
        assert_eq!(e.elements().next().unwrap().name, QName::ns("urn:d", "c"));
    }

    #[test]
    fn prefixed_namespaces_and_scoping() {
        let e =
            parse(r#"<a:r xmlns:a="urn:a"><a:c xmlns:a="urn:b"><a:g/></a:c><a:d/></a:r>"#).unwrap();
        assert_eq!(e.name, QName::ns("urn:a", "r"));
        let c = e.elements().next().unwrap();
        assert_eq!(c.name, QName::ns("urn:b", "c"), "inner redeclaration wins");
        assert_eq!(c.elements().next().unwrap().name, QName::ns("urn:b", "g"));
        let d = e.elements().nth(1).unwrap();
        assert_eq!(d.name, QName::ns("urn:a", "d"), "outer scope restored");
    }

    #[test]
    fn default_ns_undeclaration() {
        let e = parse(r#"<r xmlns="urn:d"><c xmlns=""><g/></c></r>"#).unwrap();
        let c = e.elements().next().unwrap();
        assert_eq!(c.name, QName::local("c"));
        assert_eq!(c.elements().next().unwrap().name, QName::local("g"));
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        let err = parse("<x:r/>").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UndeclaredPrefix);
    }

    #[test]
    fn undeclared_attr_prefix_is_an_error() {
        let err = parse(r#"<r x:a="1"/>"#).unwrap_err();
        assert_eq!(err.kind, ErrorKind::UndeclaredPrefix);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = parse(r#"<r a="1" a="2"/>"#).unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateAttribute);
        // Same expanded name via different prefixes is also a duplicate.
        let err = parse(r#"<r xmlns:p="urn:a" xmlns:q="urn:a" p:a="1" q:a="2"/>"#).unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateAttribute);
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert_eq!(err.kind, ErrorKind::MismatchedTag);
    }

    #[test]
    fn text_entities_expanded() {
        let e = parse("<r>1 &lt; 2 &amp;&amp; 3 &gt; 2</r>").unwrap();
        assert_eq!(e.text(), "1 < 2 && 3 > 2");
    }

    #[test]
    fn attr_entities_expanded() {
        let e = parse(r#"<r a="&quot;x&quot; &#65;"/>"#).unwrap();
        assert_eq!(e.attr("a"), Some("\"x\" A"));
    }

    #[test]
    fn cdata_sections() {
        let e = parse("<r><![CDATA[a <raw> & b]]></r>").unwrap();
        assert_eq!(e.text(), "a <raw> & b");
        assert!(matches!(e.children[0], Node::CData(_)));
    }

    #[test]
    fn comments_and_pis_in_content() {
        let e = parse("<r><!-- c --><?t d ?>x</r>").unwrap();
        assert_eq!(e.children.len(), 3);
        assert!(matches!(&e.children[0], Node::Comment(c) if c == " c "));
        assert!(
            matches!(&e.children[1], Node::Pi { target, data } if target == "t" && data == "d")
        );
        assert_eq!(e.text(), "x");
    }

    #[test]
    fn trailing_content_rejected() {
        let err = parse("<r/><r2/>").unwrap_err();
        assert_eq!(err.kind, ErrorKind::TrailingContent);
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(parse("").unwrap_err().kind, ErrorKind::Empty);
        assert_eq!(parse("   \n ").unwrap_err().kind, ErrorKind::Empty);
    }

    #[test]
    fn unterminated_everything() {
        for bad in [
            "<r",
            "<r>",
            "<r><c></c>",
            "<r><![CDATA[x",
            "<r><!-- x",
            "<r a=\"1",
            "<r>&amp",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn soap_like_document() {
        let doc = r#"<?xml version="1.0"?>
<s:Envelope xmlns:s="http://www.w3.org/2003/05/soap-envelope"
            xmlns:wsa="http://www.w3.org/2005/08/addressing">
  <s:Header>
    <wsa:Action s:mustUnderstand="true">urn:op</wsa:Action>
  </s:Header>
  <s:Body><payload xmlns="urn:app"><value>42</value></payload></s:Body>
</s:Envelope>"#;
        let env = parse(doc).unwrap();
        assert_eq!(env.name.local, "Envelope");
        let header = env.child("Header").unwrap();
        let action = header.child("Action").unwrap();
        assert_eq!(action.text(), "urn:op");
        assert_eq!(
            action.attr_ns("http://www.w3.org/2003/05/soap-envelope", "mustUnderstand"),
            Some("true")
        );
        let body = env.child("Body").unwrap();
        let payload = body.child_ns("urn:app", "payload").unwrap();
        assert_eq!(payload.child("value").unwrap().text(), "42");
    }

    #[test]
    fn whitespace_in_end_tag() {
        let e = parse("<r>x</r >").unwrap();
        assert_eq!(e.text(), "x");
    }

    #[test]
    fn single_quoted_attributes() {
        let e = parse("<r a='it is \"fine\"'/>").unwrap();
        assert_eq!(e.attr("a"), Some("it is \"fine\""));
    }

    #[test]
    fn xml_prefix_predeclared() {
        let e = parse(r#"<r xml:lang="en"/>"#).unwrap();
        assert_eq!(
            e.attr_ns("http://www.w3.org/XML/1998/namespace", "lang"),
            Some("en")
        );
    }

    #[test]
    fn multibyte_text_and_names() {
        let e = parse("<r>héllo — 世界</r>").unwrap();
        assert_eq!(e.text(), "héllo — 世界");
    }
}

#[cfg(test)]
mod depth_tests {
    use super::*;

    #[test]
    fn deep_nesting_is_an_error_not_a_crash() {
        let depth = MAX_DEPTH + 10;
        let mut doc = String::new();
        for i in 0..depth {
            doc.push_str(&format!("<e{i}>"));
        }
        for i in (0..depth).rev() {
            doc.push_str(&format!("</e{i}>"));
        }
        let err = parse(&doc).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Malformed);
        assert!(err.detail.contains("nesting"));
    }

    #[test]
    fn nesting_at_the_limit_parses() {
        let depth = MAX_DEPTH;
        let mut doc = String::new();
        for _ in 0..depth {
            doc.push_str("<e>");
        }
        for _ in 0..depth {
            doc.push_str("</e>");
        }
        assert!(parse(&doc).is_ok());
    }
}
