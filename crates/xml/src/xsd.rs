//! XML Schema `duration` and `dateTime` lexical forms.
//!
//! Both WS-Eventing and WS-Notification express subscription expiration
//! as either an `xsd:dateTime` (absolute) or an `xsd:duration`
//! (relative) — and *which* of the two a spec version accepts is a
//! Table 1 row in the paper. The engines run on a virtual millisecond
//! clock, so this module maps between epoch-milliseconds and the two
//! lexical forms.

/// Format milliseconds as an `xsd:duration` (`PnDTnHnMnS`).
///
/// Always uses days/hours/minutes/seconds (never years/months, whose
/// length is calendar-dependent).
pub fn format_duration(ms: u64) -> String {
    let total_secs = ms / 1000;
    let millis = ms % 1000;
    let days = total_secs / 86_400;
    let hours = (total_secs % 86_400) / 3_600;
    let minutes = (total_secs % 3_600) / 60;
    let secs = total_secs % 60;
    let mut out = String::from("P");
    if days > 0 {
        out.push_str(&format!("{days}D"));
    }
    if hours > 0 || minutes > 0 || secs > 0 || millis > 0 || days == 0 {
        out.push('T');
        if hours > 0 {
            out.push_str(&format!("{hours}H"));
        }
        if minutes > 0 {
            out.push_str(&format!("{minutes}M"));
        }
        if millis > 0 {
            out.push_str(&format!("{secs}.{millis:03}S"));
        } else {
            out.push_str(&format!("{secs}S"));
        }
    }
    out
}

/// Parse an `xsd:duration` into milliseconds.
///
/// Years and months are accepted with the common 365-day / 30-day
/// approximations (the WS specs use durations for lease lengths, where
/// this is the conventional reading). Negative durations are rejected.
pub fn parse_duration(s: &str) -> Option<u64> {
    let s = s.trim();
    let rest = s.strip_prefix('P')?;
    if s.starts_with('-') || rest.is_empty() {
        return None;
    }
    let (date_part, time_part) = match rest.split_once('T') {
        Some((d, t)) => {
            if t.is_empty() {
                return None;
            }
            (d, Some(t))
        }
        None => (rest, None),
    };
    let mut ms: f64 = 0.0;
    let mut parse_fields = |part: &str, fields: &[(char, f64)]| -> Option<()> {
        let mut num = String::new();
        let mut field_idx = 0usize;
        for c in part.chars() {
            if c.is_ascii_digit() || c == '.' {
                num.push(c);
            } else {
                // Find the designator at or after the current position
                // (designators must appear in order).
                let pos = fields[field_idx..].iter().position(|(d, _)| *d == c)?;
                let mult = fields[field_idx + pos].1;
                field_idx += pos + 1;
                if num.is_empty() {
                    return None;
                }
                ms += num.parse::<f64>().ok()? * mult;
                num.clear();
            }
        }
        if num.is_empty() {
            Some(())
        } else {
            None // trailing digits without a designator
        }
    };
    const DAY: f64 = 86_400_000.0;
    parse_fields(
        date_part,
        &[
            ('Y', 365.0 * DAY),
            ('M', 30.0 * DAY),
            ('W', 7.0 * DAY),
            ('D', DAY),
        ],
    )?;
    if let Some(t) = time_part {
        parse_fields(t, &[('H', 3_600_000.0), ('M', 60_000.0), ('S', 1_000.0)])?;
    }
    if !ms.is_finite() || ms < 0.0 || ms > u64::MAX as f64 {
        return None;
    }
    Some(ms as u64)
}

/// Format epoch-milliseconds as an `xsd:dateTime` in UTC
/// (`YYYY-MM-DDThh:mm:ss[.fff]Z`), proleptic Gregorian.
pub fn format_datetime(epoch_ms: u64) -> String {
    let millis = epoch_ms % 1000;
    let secs = epoch_ms / 1000;
    let (days, rem) = (secs / 86_400, secs % 86_400);
    let (h, m, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    let (year, month, day) = civil_from_days(days as i64);
    if millis > 0 {
        format!("{year:04}-{month:02}-{day:02}T{h:02}:{m:02}:{s:02}.{millis:03}Z")
    } else {
        format!("{year:04}-{month:02}-{day:02}T{h:02}:{m:02}:{s:02}Z")
    }
}

/// Parse an `xsd:dateTime` (UTC or offset-free) to epoch-milliseconds.
/// Dates before 1970 are rejected (the virtual clock starts at 0).
pub fn parse_datetime(s: &str) -> Option<u64> {
    let s = s.trim().trim_end_matches('Z');
    let (date, time) = s.split_once('T')?;
    let mut dp = date.split('-');
    let year: i64 = dp.next()?.parse().ok()?;
    let month: u32 = dp.next()?.parse().ok()?;
    let day: u32 = dp.next()?.parse().ok()?;
    if dp.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    // Strip a numeric offset if present (treat as UTC; the specs use Z).
    let time = time.split(['+']).next()?;
    let mut tp = time.split(':');
    let h: u64 = tp.next()?.parse().ok()?;
    let m: u64 = tp.next()?.parse().ok()?;
    let sec_str = tp.next()?;
    if tp.next().is_some() || h > 23 || m > 59 {
        return None;
    }
    let (sec, millis) = match sec_str.split_once('.') {
        Some((s, f)) => {
            let frac = format!("{:0<3}", f.chars().take(3).collect::<String>());
            (s.parse::<u64>().ok()?, frac.parse::<u64>().ok()?)
        }
        None => (sec_str.parse::<u64>().ok()?, 0),
    };
    if sec > 60 {
        return None;
    }
    let days = days_from_civil(year, month, day)?;
    Some(((days * 86_400 + h * 3600 + m * 60 + sec) * 1000) + millis)
}

/// Days since 1970-01-01 → (year, month, day). Howard Hinnant's civil
/// calendar algorithm.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// (year, month, day) → days since 1970-01-01; `None` when before 1970.
fn days_from_civil(y: i64, m: u32, d: u32) -> Option<u64> {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64;
    let mp = if m > 2 { m - 3 } else { m + 9 } as u64;
    let doy = (153 * mp + 2) / 5 + d as u64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    let days = era * 146_097 + doe as i64 - 719_468;
    if days < 0 {
        None
    } else {
        Some(days as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_roundtrip() {
        for ms in [
            0u64,
            1,
            999,
            1000,
            61_000,
            3_600_000,
            90_061_500,
            86_400_000 * 40,
        ] {
            let s = format_duration(ms);
            assert_eq!(parse_duration(&s), Some(ms), "{s}");
        }
    }

    #[test]
    fn duration_formats() {
        assert_eq!(format_duration(0), "PT0S");
        assert_eq!(format_duration(60_000), "PT1M0S");
        assert_eq!(format_duration(3_661_000), "PT1H1M1S");
        assert_eq!(format_duration(86_400_000), "P1D");
        assert_eq!(format_duration(500), "PT0.500S");
    }

    #[test]
    fn duration_parsing_variants() {
        assert_eq!(parse_duration("PT60S"), Some(60_000));
        assert_eq!(parse_duration("PT5M"), Some(300_000));
        assert_eq!(parse_duration("P1DT1S"), Some(86_401_000));
        assert_eq!(parse_duration("P1Y"), Some(365 * 86_400_000));
        assert_eq!(parse_duration("P2M"), Some(60 * 86_400_000));
        assert_eq!(parse_duration("P1W"), Some(7 * 86_400_000));
        assert_eq!(parse_duration("PT0.25S"), Some(250));
    }

    #[test]
    fn duration_rejects_garbage() {
        for bad in [
            "", "P", "PT", "60S", "-P1D", "P1X", "PT1", "P1M2Y", "PT1M2H",
        ] {
            assert_eq!(parse_duration(bad), None, "`{bad}` should fail");
        }
    }

    #[test]
    fn datetime_epoch() {
        assert_eq!(format_datetime(0), "1970-01-01T00:00:00Z");
        assert_eq!(parse_datetime("1970-01-01T00:00:00Z"), Some(0));
    }

    #[test]
    fn datetime_roundtrip() {
        for ms in [
            0u64,
            1_000,
            86_400_000,
            1_234_567_890_123,
            1_700_000_000_000,
        ] {
            let s = format_datetime(ms);
            assert_eq!(parse_datetime(&s), Some(ms), "{s}");
        }
    }

    #[test]
    fn datetime_known_values() {
        // 2006-02-01: the month WS-BaseNotification 1.3 PR2 was current.
        let ms = parse_datetime("2006-02-01T00:00:00Z").unwrap();
        assert_eq!(format_datetime(ms), "2006-02-01T00:00:00Z");
        // Leap-year day.
        let leap = parse_datetime("2004-02-29T12:30:45Z").unwrap();
        assert_eq!(format_datetime(leap), "2004-02-29T12:30:45Z");
    }

    #[test]
    fn datetime_fractions() {
        let ms = parse_datetime("1970-01-01T00:00:00.250Z").unwrap();
        assert_eq!(ms, 250);
        assert_eq!(format_datetime(250), "1970-01-01T00:00:00.250Z");
    }

    #[test]
    fn datetime_rejects_garbage() {
        for bad in [
            "",
            "1970-01-01",
            "T00:00:00",
            "1969-12-31T23:59:59Z",
            "1970-13-01T00:00:00Z",
        ] {
            assert_eq!(parse_datetime(bad), None, "`{bad}` should fail");
        }
    }
}
