//! Structural diff between two element trees.
//!
//! This is the instrument behind the paper's §V.4 message-format
//! comparison: serialize the "same" logical message in WS-Eventing and
//! WS-Notification, diff the trees, and classify the differences. The
//! diff is positional (children are matched by element index), which
//! matches how the specs define message layouts.

use crate::tree::{Element, Node};
use std::fmt;

/// What kind of difference was observed at a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffKind {
    /// Same position, different local names.
    LocalName {
        /// Left tree's local name.
        left: String,
        /// Right tree's local name.
        right: String,
    },
    /// Same local name, different namespaces.
    Namespace {
        /// Left tree's namespace.
        left: Option<String>,
        /// Right tree's namespace.
        right: Option<String>,
    },
    /// An attribute present on one side only. `side` is which tree has it.
    AttrPresence {
        /// Attribute name (Clark notation).
        name: String,
        /// Which tree carries it.
        side: Side,
    },
    /// Same attribute, different values.
    AttrValue {
        /// Attribute name (Clark notation).
        name: String,
        /// Left tree's value.
        left: String,
        /// Right tree's value.
        right: String,
    },
    /// Different direct text content.
    Text {
        /// Left tree's (whitespace-normalized) text.
        left: String,
        /// Right tree's text.
        right: String,
    },
    /// Different numbers of element children (structure difference).
    ChildCount {
        /// Left tree's element-child count.
        left: usize,
        /// Right tree's element-child count.
        right: usize,
    },
}

/// Which input tree a one-sided difference belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The first tree passed to [`diff`].
    Left,
    /// The second tree passed to [`diff`].
    Right,
}

/// A single difference, anchored at a slash-separated path of local
/// names from the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffEntry {
    /// Location, e.g. `/Envelope/Body/Subscribe`.
    pub path: String,
    /// The difference itself.
    pub kind: DiffKind,
}

impl fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            DiffKind::LocalName { left, right } => {
                write!(f, "{}: element name `{left}` vs `{right}`", self.path)
            }
            DiffKind::Namespace { left, right } => {
                write!(f, "{}: namespace {:?} vs {:?}", self.path, left, right)
            }
            DiffKind::AttrPresence { name, side } => write!(
                f,
                "{}: attribute `{name}` only on the {} side",
                self.path,
                match side {
                    Side::Left => "left",
                    Side::Right => "right",
                }
            ),
            DiffKind::AttrValue { name, left, right } => {
                write!(
                    f,
                    "{}: attribute `{name}` = `{left}` vs `{right}`",
                    self.path
                )
            }
            DiffKind::Text { left, right } => {
                write!(f, "{}: text `{left}` vs `{right}`", self.path)
            }
            DiffKind::ChildCount { left, right } => {
                write!(f, "{}: {left} vs {right} element children", self.path)
            }
        }
    }
}

/// Compute the structural differences between two trees.
pub fn diff(left: &Element, right: &Element) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    diff_elements(left, right, String::new(), &mut out);
    out
}

fn diff_elements(l: &Element, r: &Element, parent_path: String, out: &mut Vec<DiffEntry>) {
    let path = format!("{parent_path}/{}", l.name.local);

    if l.name.local != r.name.local {
        out.push(DiffEntry {
            path: path.clone(),
            kind: DiffKind::LocalName {
                left: l.name.local.to_string(),
                right: r.name.local.to_string(),
            },
        });
    } else if l.name.ns != r.name.ns {
        out.push(DiffEntry {
            path: path.clone(),
            kind: DiffKind::Namespace {
                left: l.name.ns.as_deref().map(str::to_string),
                right: r.name.ns.as_deref().map(str::to_string),
            },
        });
    }

    // Attributes by expanded name, order-insensitively.
    for la in &l.attrs {
        match r.attrs.iter().find(|ra| ra.name == la.name) {
            Some(ra) if ra.value == la.value => {}
            Some(ra) => out.push(DiffEntry {
                path: path.clone(),
                kind: DiffKind::AttrValue {
                    name: la.name.clark(),
                    left: la.value.clone(),
                    right: ra.value.clone(),
                },
            }),
            None => out.push(DiffEntry {
                path: path.clone(),
                kind: DiffKind::AttrPresence {
                    name: la.name.clark(),
                    side: Side::Left,
                },
            }),
        }
    }
    for ra in &r.attrs {
        if !l.attrs.iter().any(|la| la.name == ra.name) {
            out.push(DiffEntry {
                path: path.clone(),
                kind: DiffKind::AttrPresence {
                    name: ra.name.clark(),
                    side: Side::Right,
                },
            });
        }
    }

    // Direct text (whitespace-normalized: formatting differences between
    // stacks are not semantic differences).
    let lt = normalize(&l.text());
    let rt = normalize(&r.text());
    if lt != rt {
        out.push(DiffEntry {
            path: path.clone(),
            kind: DiffKind::Text {
                left: lt,
                right: rt,
            },
        });
    }

    // Children, positionally.
    let lc: Vec<&Element> = l.children.iter().filter_map(Node::as_element).collect();
    let rc: Vec<&Element> = r.children.iter().filter_map(Node::as_element).collect();
    if lc.len() != rc.len() {
        out.push(DiffEntry {
            path: path.clone(),
            kind: DiffKind::ChildCount {
                left: lc.len(),
                right: rc.len(),
            },
        });
    }
    for (cl, cr) in lc.iter().zip(rc.iter()) {
        diff_elements(cl, cr, path.clone(), out);
    }
}

fn normalize(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn d(a: &str, b: &str) -> Vec<DiffEntry> {
        diff(&parse(a).unwrap(), &parse(b).unwrap())
    }

    #[test]
    fn identical_trees_have_no_diff() {
        assert!(d("<r><a x='1'>t</a></r>", "<r><a x='1'>t</a></r>").is_empty());
    }

    #[test]
    fn prefix_spelling_is_not_a_difference() {
        assert!(d(
            r#"<p:r xmlns:p="urn:a"><p:c/></p:r>"#,
            r#"<q:r xmlns:q="urn:a"><q:c/></q:r>"#
        )
        .is_empty());
    }

    #[test]
    fn local_name_difference() {
        let ds = d("<r><Identifier/></r>", "<r><SubscriptionId/></r>");
        assert!(matches!(&ds[0].kind, DiffKind::LocalName { left, right }
            if left == "Identifier" && right == "SubscriptionId"));
    }

    #[test]
    fn namespace_difference_detected_separately() {
        let ds = d(r#"<r xmlns="urn:wse"/>"#, r#"<r xmlns="urn:wsn"/>"#);
        assert_eq!(ds.len(), 1);
        assert!(matches!(&ds[0].kind, DiffKind::Namespace { .. }));
    }

    #[test]
    fn attribute_differences() {
        let ds = d("<r a='1' b='x'/>", "<r a='2' c='y'/>");
        assert!(ds
            .iter()
            .any(|e| matches!(&e.kind, DiffKind::AttrValue { name, .. } if name == "a")));
        assert!(ds.iter().any(
            |e| matches!(&e.kind, DiffKind::AttrPresence { name, side: Side::Left } if name == "b")
        ));
        assert!(ds.iter().any(
            |e| matches!(&e.kind, DiffKind::AttrPresence { name, side: Side::Right } if name == "c")
        ));
    }

    #[test]
    fn text_difference_is_whitespace_normalized() {
        assert!(d("<r>a  b</r>", "<r> a b </r>").is_empty());
        let ds = d("<r>a</r>", "<r>b</r>");
        assert!(matches!(&ds[0].kind, DiffKind::Text { .. }));
    }

    #[test]
    fn structure_difference() {
        let ds = d("<r><a/><b/></r>", "<r><a/></r>");
        assert!(ds
            .iter()
            .any(|e| matches!(&e.kind, DiffKind::ChildCount { left: 2, right: 1 })));
    }

    #[test]
    fn nested_paths_reported() {
        let ds = d("<r><h><x v='1'/></h></r>", "<r><h><x v='2'/></h></r>");
        assert_eq!(ds[0].path, "/r/h/x");
    }

    #[test]
    fn display_is_readable() {
        let ds = d("<r>a</r>", "<r>b</r>");
        let s = ds[0].to_string();
        assert!(s.contains("text"), "{s}");
    }
}
