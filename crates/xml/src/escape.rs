//! Escaping and entity expansion.
//!
//! All three entry points are `Cow`-based: the overwhelming majority of
//! SOAP text — action URIs, identifiers, timestamps, payload values —
//! contains no markup-significant bytes, and for those a byte scan
//! proves it and the input is returned borrowed. Only text that
//! actually contains an escapable byte (or an entity, on the way in)
//! pays for a fresh `String`.

use crate::error::{ErrorKind, XmlError, XmlResult};
use std::borrow::Cow;

/// Position of the first byte of `text` that [`escape_text`] would
/// rewrite, or `None` when the text can be emitted verbatim.
#[inline]
fn first_text_escape(text: &str) -> Option<usize> {
    text.as_bytes()
        .iter()
        .position(|&b| matches!(b, b'<' | b'>' | b'&'))
}

/// Position of the first byte of `value` that [`escape_attr`] would
/// rewrite, or `None` when the value can be emitted verbatim.
#[inline]
fn first_attr_escape(value: &str) -> Option<usize> {
    value
        .as_bytes()
        .iter()
        .position(|&b| matches!(b, b'<' | b'>' | b'&' | b'"' | b'\n' | b'\t' | b'\r'))
}

/// Escape `text` for use as element character data.
///
/// `<`, `&` and `>` are escaped (`>` strictly only needs escaping in
/// `]]>` but escaping it everywhere is harmless and common practice).
/// Returns `Cow::Borrowed` when nothing needs escaping.
pub fn escape_text(text: &str) -> Cow<'_, str> {
    let Some(first) = first_text_escape(text) else {
        return Cow::Borrowed(text);
    };
    let mut out = String::with_capacity(text.len() + 8);
    out.push_str(&text[..first]);
    for c in text[first..].chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Escape `value` for use inside a double-quoted attribute value.
///
/// Returns `Cow::Borrowed` when nothing needs escaping.
pub fn escape_attr(value: &str) -> Cow<'_, str> {
    let Some(first) = first_attr_escape(value) else {
        return Cow::Borrowed(value);
    };
    let mut out = String::with_capacity(value.len() + 8);
    out.push_str(&value[..first]);
    for c in value[first..].chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Expand the five predefined entities and numeric character references
/// in `raw`, which must not contain markup.
///
/// `base` is the byte offset of `raw` in the overall input, used for
/// error positions. Input without a `&` comes back borrowed.
pub fn unescape(raw: &str, base: usize) -> XmlResult<Cow<'_, str>> {
    let Some(first) = raw.as_bytes().iter().position(|&b| b == b'&') else {
        return Ok(Cow::Borrowed(raw));
    };
    let mut out = String::with_capacity(raw.len());
    out.push_str(&raw[..first]);
    let bytes = raw.as_bytes();
    let mut i = first;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Advance over one UTF-8 scalar.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&raw[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        let semi = raw[i..].find(';').ok_or_else(|| {
            XmlError::new(ErrorKind::UnknownEntity, base + i, "unterminated entity")
        })?;
        let body = &raw[i + 1..i + semi];
        match body {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if body.starts_with('#') => {
                let code = if let Some(hex) =
                    body.strip_prefix("#x").or_else(|| body.strip_prefix("#X"))
                {
                    u32::from_str_radix(hex, 16)
                } else {
                    body[1..].parse::<u32>()
                }
                .map_err(|_| {
                    XmlError::new(
                        ErrorKind::UnknownEntity,
                        base + i,
                        format!("bad character reference &{body};"),
                    )
                })?;
                let c = char::from_u32(code).ok_or_else(|| {
                    XmlError::new(
                        ErrorKind::UnknownEntity,
                        base + i,
                        format!("invalid codepoint {code}"),
                    )
                })?;
                out.push(c);
            }
            _ => {
                return Err(XmlError::new(
                    ErrorKind::UnknownEntity,
                    base + i,
                    format!("&{body};"),
                ))
            }
        }
        i += semi + 1;
    }
    Ok(Cow::Owned(out))
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping_roundtrip() {
        let raw = "a < b && c > d";
        let esc = escape_text(raw);
        assert_eq!(esc, "a &lt; b &amp;&amp; c &gt; d");
        assert_eq!(unescape(&esc, 0).unwrap(), raw);
    }

    #[test]
    fn clean_text_borrows() {
        assert!(matches!(escape_text("urn:op/NotifyTo"), Cow::Borrowed(_)));
        assert!(matches!(escape_attr("true"), Cow::Borrowed(_)));
        assert!(matches!(
            unescape("plain text", 0).unwrap(),
            Cow::Borrowed(_)
        ));
        // Multibyte content without escapables also borrows.
        assert!(matches!(escape_text("héllo — 世界"), Cow::Borrowed(_)));
    }

    #[test]
    fn dirty_text_owns() {
        assert!(matches!(escape_text("a<b"), Cow::Owned(_)));
        assert!(matches!(escape_attr("a\"b"), Cow::Owned(_)));
        assert!(matches!(unescape("&amp;", 0).unwrap(), Cow::Owned(_)));
    }

    #[test]
    fn escapable_late_in_string_still_escapes() {
        assert_eq!(escape_text("aaaaaaaa<"), "aaaaaaaa&lt;");
        assert_eq!(escape_attr("aaaaaaaa\n"), "aaaaaaaa&#10;");
    }

    #[test]
    fn attr_escaping_quotes_and_whitespace() {
        assert_eq!(escape_attr(r#"say "hi"<"#), "say &quot;hi&quot;&lt;");
        assert_eq!(escape_attr("a\nb\tc"), "a&#10;b&#9;c");
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", 0).unwrap(), "ABc");
        assert_eq!(unescape("&#x1F600;", 0).unwrap(), "\u{1F600}");
    }

    #[test]
    fn unknown_entity_is_an_error() {
        let err = unescape("&nbsp;", 0).unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownEntity);
    }

    #[test]
    fn unterminated_entity_is_an_error() {
        assert!(unescape("&amp", 0).is_err());
    }

    #[test]
    fn invalid_codepoint_rejected() {
        assert!(unescape("&#xD800;", 0).is_err()); // lone surrogate
        assert!(unescape("&#xFFFFFF;", 0).is_err());
    }

    #[test]
    fn multibyte_passthrough() {
        assert_eq!(unescape("héllo — ≤&amp;≥", 0).unwrap(), "héllo — ≤&≥");
    }

    #[test]
    fn apos_entity() {
        assert_eq!(unescape("&apos;", 0).unwrap(), "'");
    }
}
