//! Serialization with automatic namespace-declaration management.
//!
//! The writer is allocation-lean by design: tag names are pairs of
//! interned handles (cloning one is a reference-count bump, and the
//! open tag is reused verbatim for the close tag), namespace scopes
//! hold interned prefixes/URIs, and text/attribute escaping goes
//! through the `Cow` fast path in [`crate::escape`] so clean content is
//! appended directly from the tree. Callers that serialize repeatedly
//! should prefer [`write_into`] with a buffer from
//! [`crate::pool::with_buffer`] so even the output `String` is reused.

use crate::escape::{escape_attr, escape_text};
use crate::intern::{intern, Interned};
use crate::name::XML_NS;
use crate::tree::{Element, Node};

/// Serialization options.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteOptions {
    /// Emit `<?xml version="1.0" encoding="utf-8"?>` first.
    pub xml_decl: bool,
    /// `Some(n)` pretty-prints with `n`-space indentation. Elements with
    /// text content are kept inline so character data is never altered.
    pub indent: Option<usize>,
}

/// Serialize compactly (no XML declaration, no added whitespace).
pub fn to_string(root: &Element) -> String {
    write_with(root, WriteOptions::default())
}

/// Serialize pretty-printed with two-space indentation.
pub fn to_pretty_string(root: &Element) -> String {
    write_with(
        root,
        WriteOptions {
            xml_decl: false,
            indent: Some(2),
        },
    )
}

/// Serialize with explicit [`WriteOptions`].
pub fn write_with(root: &Element, opts: WriteOptions) -> String {
    let mut out = String::with_capacity(256);
    write_into(root, &mut out, opts);
    out
}

/// Serialize `root` by appending to an existing buffer.
///
/// This is the allocation-free entry point: with a pooled, pre-sized
/// buffer the serializer performs no output allocation beyond what the
/// document's namespace bookkeeping strictly requires.
pub fn write_into(root: &Element, out: &mut String, opts: WriteOptions) {
    if opts.xml_decl {
        out.push_str("<?xml version=\"1.0\" encoding=\"utf-8\"?>");
        if opts.indent.is_some() {
            out.push('\n');
        }
    }
    let mut w = Writer {
        out,
        opts,
        scopes: Vec::new(),
        gen_counter: 0,
    };
    w.element(root, 0);
}

/// A resolved lexical tag name. Both halves are interned handles, so a
/// `Tag` is cheap to build, and the element writer reuses the same
/// value for the open and close tags instead of formatting a `String`
/// per tag as the seed did.
enum Tag {
    /// `local`
    Plain(Interned),
    /// `prefix:local`
    Prefixed(Interned, Interned),
}

impl Tag {
    fn push_to(&self, out: &mut String) {
        match self {
            Tag::Plain(local) => out.push_str(local),
            Tag::Prefixed(prefix, local) => {
                out.push_str(prefix);
                out.push(':');
                out.push_str(local);
            }
        }
    }
}

struct Writer<'a> {
    out: &'a mut String,
    opts: WriteOptions,
    /// In-scope declarations, innermost last: `(prefix, uri)`.
    /// `prefix == None` is the default namespace; an empty uri
    /// represents an un-declaration.
    scopes: Vec<(Option<Interned>, Interned)>,
    gen_counter: usize,
}

impl Writer<'_> {
    /// URI currently bound to `prefix` (innermost wins).
    fn binding_of(&self, prefix: Option<&str>) -> Option<&Interned> {
        self.scopes
            .iter()
            .rev()
            .find(|(p, _)| p.as_deref() == prefix)
            .map(|(_, u)| u)
    }

    /// An in-scope, unshadowed prefix bound to `uri`. When `allow_default`
    /// is false (attributes), the default namespace does not count.
    ///
    /// Returns an owned (reference-counted) prefix so callers can keep
    /// it across later scope mutations.
    fn prefix_for(&self, uri: &str, allow_default: bool) -> Option<Option<Interned>> {
        for (p, u) in self.scopes.iter().rev() {
            if *u == uri {
                if !allow_default && p.is_none() {
                    continue;
                }
                // Check that this binding is not shadowed by an inner one.
                if self.binding_of(p.as_deref()).is_some_and(|b| b == uri) {
                    return Some(p.clone());
                }
            }
        }
        if uri == XML_NS {
            return Some(Some(intern("xml")));
        }
        None
    }

    fn fresh_prefix(&mut self) -> Interned {
        loop {
            let cand = format!("ns{}", self.gen_counter);
            self.gen_counter += 1;
            if self.binding_of(Some(&cand)).is_none() {
                return intern(&cand);
            }
        }
    }

    fn element(&mut self, e: &Element, depth: usize) {
        let scope_base = self.scopes.len();
        // Declarations this element must carry: (prefix, uri).
        let mut decls: Vec<(Option<Interned>, Interned)> = Vec::new();

        // Resolve the element's own name.
        let tag = self.qualify(
            &e.name.ns,
            e.prefix_hint.as_ref(),
            true,
            &mut decls,
            &e.name.local,
        );

        // Resolve attribute names (values are escaped at write time).
        let mut attr_tags: Vec<Tag> = Vec::with_capacity(e.attrs.len());
        for a in &e.attrs {
            let aname = match &a.name.ns {
                None => Tag::Plain(a.name.local.clone()),
                Some(_) => self.qualify(
                    &a.name.ns,
                    a.prefix_hint.as_ref(),
                    false,
                    &mut decls,
                    &a.name.local,
                ),
            };
            attr_tags.push(aname);
        }

        self.out.push('<');
        tag.push_to(self.out);
        for (p, u) in &decls {
            match p {
                None => {
                    self.out.push_str(" xmlns=\"");
                }
                Some(p) => {
                    self.out.push_str(" xmlns:");
                    self.out.push_str(p);
                    self.out.push_str("=\"");
                }
            }
            self.out.push_str(&escape_attr(u));
            self.out.push('"');
        }
        for (a, aname) in e.attrs.iter().zip(&attr_tags) {
            self.out.push(' ');
            aname.push_to(self.out);
            self.out.push_str("=\"");
            self.out.push_str(&escape_attr(&a.value));
            self.out.push('"');
        }

        if e.children.is_empty() {
            self.out.push_str("/>");
            self.scopes.truncate(scope_base);
            return;
        }
        self.out.push('>');

        let indent_children = self.opts.indent.is_some()
            && e.children
                .iter()
                .all(|c| !matches!(c, Node::Text(_) | Node::CData(_)));
        for c in &e.children {
            if indent_children {
                self.newline_indent(depth + 1);
            }
            match c {
                Node::Element(child) => self.element(child, depth + 1),
                Node::Shared(shared) => {
                    // The cached form self-declares every namespace it
                    // uses, so it can be spliced anywhere a default
                    // namespace cannot capture its unprefixed names.
                    // Pretty mode re-renders so indentation stays right.
                    let default_ns_active = self.binding_of(None).is_some_and(|u| !u.is_empty());
                    if self.opts.indent.is_none() && !default_ns_active {
                        self.out.push_str(shared.xml());
                    } else {
                        self.element(shared.element(), depth + 1);
                    }
                }
                Node::Text(t) => self.out.push_str(&escape_text(t)),
                Node::CData(t) => {
                    self.out.push_str("<![CDATA[");
                    self.out.push_str(t);
                    self.out.push_str("]]>");
                }
                Node::Comment(t) => {
                    self.out.push_str("<!--");
                    self.out.push_str(t);
                    self.out.push_str("-->");
                }
                Node::Pi { target, data } => {
                    self.out.push_str("<?");
                    self.out.push_str(target);
                    if !data.is_empty() {
                        self.out.push(' ');
                        self.out.push_str(data);
                    }
                    self.out.push_str("?>");
                }
            }
        }
        if indent_children {
            self.newline_indent(depth);
        }
        self.out.push_str("</");
        tag.push_to(self.out);
        self.out.push('>');
        self.scopes.truncate(scope_base);
    }

    fn newline_indent(&mut self, depth: usize) {
        if let Some(n) = self.opts.indent {
            self.out.push('\n');
            for _ in 0..depth * n {
                self.out.push(' ');
            }
        }
    }

    /// Produce the lexical tag name for (`ns`, `local`), adding any
    /// declaration needed to `decls` and the scope stack.
    fn qualify(
        &mut self,
        ns: &Option<Interned>,
        hint: Option<&Interned>,
        allow_default: bool,
        decls: &mut Vec<(Option<Interned>, Interned)>,
        local: &Interned,
    ) -> Tag {
        match ns {
            None => {
                // For elements, make sure no default namespace captures us.
                if allow_default {
                    if let Some(u) = self.binding_of(None) {
                        if !u.is_empty() {
                            let empty = intern("");
                            decls.push((None, empty.clone()));
                            self.scopes.push((None, empty));
                        }
                    }
                }
                Tag::Plain(local.clone())
            }
            Some(uri) => {
                if *uri == XML_NS {
                    return Tag::Prefixed(intern("xml"), local.clone());
                }
                // Prefer the hint when it is already correctly bound.
                if let Some(h) = hint {
                    if self.binding_of(Some(h.as_str())).is_some_and(|b| b == uri) {
                        return Tag::Prefixed(h.clone(), local.clone());
                    }
                }
                if hint.is_none() {
                    if let Some(binding) = self.prefix_for(uri, allow_default) {
                        return match binding {
                            None => Tag::Plain(local.clone()),
                            Some(p) => Tag::Prefixed(p, local.clone()),
                        };
                    }
                }
                // Need a new declaration.
                let prefix = match hint {
                    Some(h) if !h.is_empty() => h.clone(),
                    _ => {
                        if let Some(binding) = self.prefix_for(uri, allow_default) {
                            return match binding {
                                None => Tag::Plain(local.clone()),
                                Some(p) => Tag::Prefixed(p, local.clone()),
                            };
                        }
                        if allow_default {
                            // No hint on an element: declare the default
                            // namespace rather than inventing a prefix.
                            decls.push((None, uri.clone()));
                            self.scopes.push((None, uri.clone()));
                            return Tag::Plain(local.clone());
                        }
                        self.fresh_prefix()
                    }
                };
                decls.push((Some(prefix.clone()), uri.clone()));
                self.scopes.push((Some(prefix.clone()), uri.clone()));
                Tag::Prefixed(prefix, local.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::QName;

    fn roundtrip(doc: &str) -> Element {
        let e = parse(doc).unwrap();
        let s = to_string(&e);
        let e2 = parse(&s).unwrap_or_else(|err| panic!("reparse of `{s}` failed: {err}"));
        assert_eq!(e, e2, "serialized form `{s}` changed the tree");
        e
    }

    #[test]
    fn simple_roundtrips() {
        roundtrip("<r/>");
        roundtrip("<r a=\"1\">text</r>");
        roundtrip("<r><a/><b>x</b></r>");
    }

    #[test]
    fn namespace_roundtrips() {
        roundtrip(r#"<p:r xmlns:p="urn:a"><p:c/><q:d xmlns:q="urn:b"/></p:r>"#);
        roundtrip(r#"<r xmlns="urn:a"><c/><d xmlns="">plain</d></r>"#);
        roundtrip(r#"<r xmlns:x="urn:x" x:a="1" b="2"/>"#);
    }

    #[test]
    fn builder_tree_gets_declarations() {
        let e = Element::ns("urn:s", "Envelope", "s").with_child(
            Element::ns("urn:s", "Body", "s").with_child(
                Element::ns("urn:app", "op", "app").with_attr_ns("urn:x", "id", "x", "7"),
            ),
        );
        let s = to_string(&e);
        assert!(s.contains("xmlns:s=\"urn:s\""), "{s}");
        assert!(s.contains("xmlns:app=\"urn:app\""), "{s}");
        assert!(s.contains("xmlns:x=\"urn:x\""), "{s}");
        // Inner s:Body reuses the outer declaration.
        assert_eq!(s.matches("xmlns:s=").count(), 1, "{s}");
        let back = parse(&s).unwrap();
        assert_eq!(back.name, QName::ns("urn:s", "Envelope"));
        assert_eq!(
            back.child("Body")
                .unwrap()
                .child("op")
                .unwrap()
                .attr_ns("urn:x", "id"),
            Some("7")
        );
    }

    #[test]
    fn missing_hint_uses_default_namespace() {
        let e = Element::new(QName::ns("urn:z", "thing"));
        let s = to_string(&e);
        let back = parse(&s).unwrap();
        assert_eq!(back.name, QName::ns("urn:z", "thing"));
    }

    #[test]
    fn attr_never_uses_default_namespace() {
        // Element uses default ns; attribute in same ns must get a prefix.
        let mut e = Element::new(QName::ns("urn:a", "r"));
        e.attrs.push(crate::tree::Attribute {
            name: QName::ns("urn:a", "k"),
            prefix_hint: None,
            value: "v".into(),
        });
        let s = to_string(&e);
        let back = parse(&s).unwrap();
        assert_eq!(back.attr_ns("urn:a", "k"), Some("v"));
    }

    #[test]
    fn unprefixed_child_of_defaulted_parent_undeclares() {
        let e = parse(r#"<r xmlns="urn:a"><c xmlns="">x</c></r>"#).unwrap();
        let s = to_string(&e);
        assert!(s.contains("xmlns=\"\""), "{s}");
        let back = parse(&s).unwrap();
        assert_eq!(back.elements().next().unwrap().name, QName::local("c"));
    }

    #[test]
    fn text_escaped_on_output() {
        let e = Element::local("r").with_text("a < b & c");
        assert_eq!(to_string(&e), "<r>a &lt; b &amp; c</r>");
    }

    #[test]
    fn cdata_comment_pi_roundtrip() {
        roundtrip("<r><![CDATA[a < b]]><!-- note --><?target stuff?></r>");
    }

    #[test]
    fn pretty_print_indents_element_only_content() {
        let e = parse("<r><a><b/></a><c/></r>").unwrap();
        let s = to_pretty_string(&e);
        assert_eq!(s, "<r>\n  <a>\n    <b/>\n  </a>\n  <c/>\n</r>");
    }

    #[test]
    fn pretty_print_keeps_text_inline() {
        let e = parse("<r><a>text</a></r>").unwrap();
        let s = to_pretty_string(&e);
        assert!(s.contains("<a>text</a>"), "{s}");
    }

    #[test]
    fn xml_decl_option() {
        let e = Element::local("r");
        let s = write_with(
            &e,
            WriteOptions {
                xml_decl: true,
                indent: None,
            },
        );
        assert!(s.starts_with("<?xml version=\"1.0\""), "{s}");
    }

    #[test]
    fn write_into_appends_to_existing_buffer() {
        let mut buf = String::from("PREFIX|");
        write_into(
            &Element::local("r").with_text("x"),
            &mut buf,
            WriteOptions::default(),
        );
        assert_eq!(buf, "PREFIX|<r>x</r>");
    }

    #[test]
    fn hint_collision_rebinds_locally() {
        // Parent binds p->urn:a; child insists on p->urn:b. Legal XML:
        // the child carries its own xmlns:p.
        let e = Element::ns("urn:a", "r", "p").with_child(Element::ns("urn:b", "c", "p"));
        let s = to_string(&e);
        let back = parse(&s).unwrap();
        assert_eq!(back.name, QName::ns("urn:a", "r"));
        assert_eq!(
            back.elements().next().unwrap().name,
            QName::ns("urn:b", "c")
        );
    }

    #[test]
    fn shared_subtree_writes_identically_to_plain() {
        use crate::tree::SharedElement;
        let payload = Element::ns("urn:app", "alert", "app")
            .with_attr("sev", "3")
            .with_child(Element::ns("urn:app", "src", "app").with_text("x < y & z"))
            .with_child(Element::local("plain").with_text("t"));
        let mut with_plain = Element::ns("urn:s", "Body", "s");
        with_plain.children.push(Node::Element(payload.clone()));
        let mut with_shared = Element::ns("urn:s", "Body", "s");
        let shared = SharedElement::new(payload);
        with_shared.children.push(Node::Shared(shared.clone()));
        assert_eq!(to_string(&with_shared), to_string(&with_plain));
        // Parsing the spliced form recovers the same tree.
        assert_eq!(parse(&to_string(&with_shared)).unwrap(), with_plain);
        // Pretty mode falls back to recursive writing and matches too.
        assert_eq!(
            to_pretty_string(&with_shared),
            to_pretty_string(&with_plain)
        );
    }

    #[test]
    fn shared_subtree_under_default_namespace_is_not_spliced() {
        use crate::tree::SharedElement;
        // The no-namespace child would be captured by the active
        // default namespace if the cached standalone form were spliced.
        let payload = Element::local("note").with_text("hi");
        let mut root = Element::new(QName::ns("urn:outer", "r"));
        root.children
            .push(Node::Shared(SharedElement::new(payload)));
        let back = parse(&to_string(&root)).unwrap();
        assert_eq!(back.elements().next().unwrap().name, QName::local("note"));
    }

    #[test]
    fn shared_subtree_serializes_once_across_documents() {
        use crate::tree::SharedElement;
        let shared = SharedElement::new(Element::ns("urn:app", "ev", "app").with_text("payload"));
        let before = crate::tree::shared_serialization_count();
        for i in 0..16 {
            let mut doc = Element::ns("urn:s", "Envelope", "s").with_attr("n", i.to_string());
            doc.children.push(Node::Shared(shared.clone()));
            let _ = to_string(&doc);
        }
        assert_eq!(crate::tree::shared_serialization_count() - before, 1);
    }

    #[test]
    fn xml_namespace_never_declared() {
        let mut e = Element::local("r");
        e.attrs.push(crate::tree::Attribute {
            name: QName::ns(crate::name::XML_NS, "lang"),
            prefix_hint: Some(crate::intern::intern("xml")),
            value: "en".into(),
        });
        let s = to_string(&e);
        assert_eq!(s, r#"<r xml:lang="en"/>"#);
    }
}
