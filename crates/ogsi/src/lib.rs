#![warn(missing_docs)]
//! # wsm-ogsi — OGSI notification simulation
//!
//! The fourth Table 3 column and the paper's "intermediary step towards
//! WS-based event notification" (§VI.C): Grid services expose **Service
//! Data Elements** (SDEs); a `NotificationSink` subscribes to a
//! `NotificationSource` by **service data name** (a plain string — the
//! simplest filter model in the comparison), and the source pushes the
//! new SDE value whenever it changes. Payloads are XML over an
//! HTTP-like transport (our simulated network), but the service
//! interface is OGSI's GWSDL extension rather than plain WSDL — the
//! incompatibility that ultimately got OGSI replaced by WSRF +
//! WS-Notification.
//!
//! Management operations per Table 3: `subscribe`,
//! `requestTerminationAfter`, `requestTerminationBefore`, `destroy`.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use wsm_addressing::{EndpointReference, MessageHeaders, WsaVersion};
use wsm_soap::{Envelope, Fault, SoapVersion};
use wsm_transport::{Network, SoapHandler, TransportError};
use wsm_xml::{xsd, Element};

/// The OGSI namespace.
pub const OGSI_NS: &str = "http://www.gridforum.org/namespaces/2003/03/OGSI";

struct OgsiSubscription {
    id: String,
    sde_name: String,
    sink: String,
    expires_ms: Option<u64>,
}

struct SourceInner {
    net: Network,
    uri: String,
    sde: Mutex<HashMap<String, Element>>,
    subscriptions: Mutex<Vec<OgsiSubscription>>,
    next_id: Mutex<u64>,
}

/// A Grid service acting as a NotificationSource.
#[derive(Clone)]
pub struct NotificationSource {
    inner: Arc<SourceInner>,
}

impl NotificationSource {
    /// Start a notification source at `uri`.
    pub fn start(net: &Network, uri: &str) -> Self {
        let inner = Arc::new(SourceInner {
            net: net.clone(),
            uri: uri.to_string(),
            sde: Mutex::new(HashMap::new()),
            subscriptions: Mutex::new(Vec::new()),
            next_id: Mutex::new(0),
        });
        net.register(
            uri,
            Arc::new(SourceHandler {
                inner: Arc::clone(&inner),
            }),
        );
        NotificationSource { inner }
    }

    /// The service URI.
    pub fn uri(&self) -> &str {
        &self.inner.uri
    }

    /// Set a service data element; subscribed sinks are pushed the new
    /// value. Returns the number of notifications delivered.
    pub fn set_service_data(&self, name: &str, value: Element) -> usize {
        self.inner
            .sde
            .lock()
            .insert(name.to_string(), value.clone());
        let now = self.inner.net.clock().now_ms();
        let mut delivered = 0;
        let mut dead: Vec<String> = Vec::new();
        {
            let mut subs = self.inner.subscriptions.lock();
            subs.retain(|s| s.expires_ms.is_none_or(|t| t > now));
            for s in subs.iter().filter(|s| s.sde_name == name) {
                let body = Element::ns(OGSI_NS, "DeliverNotification", "ogsi")
                    .with_child(Element::ns(OGSI_NS, "ServiceDataName", "ogsi").with_text(name))
                    .with_child(
                        Element::ns(OGSI_NS, "ServiceDataValues", "ogsi").with_child(value.clone()),
                    );
                let mut env = Envelope::new(SoapVersion::V11).with_body(body);
                MessageHeaders::request(&s.sink, format!("{OGSI_NS}/DeliverNotification"))
                    .apply(&mut env, WsaVersion::V200303);
                match self.inner.net.send(&s.sink, env) {
                    Ok(()) => delivered += 1,
                    Err(_) => dead.push(s.id.clone()),
                }
            }
            subs.retain(|s| !dead.contains(&s.id));
        }
        delivered
    }

    /// `findServiceData`: the current value of an SDE.
    pub fn find_service_data(&self, name: &str) -> Option<Element> {
        self.inner.sde.lock().get(name).cloned()
    }

    /// Live subscription count.
    pub fn subscription_count(&self) -> usize {
        self.inner.subscriptions.lock().len()
    }
}

struct SourceHandler {
    inner: Arc<SourceInner>,
}

impl SoapHandler for SourceHandler {
    fn handle(&self, request: Envelope) -> Result<Option<Envelope>, Fault> {
        let inner = &self.inner;
        let body = request.body().ok_or_else(|| Fault::sender("empty body"))?;
        if body.name.is(OGSI_NS, "Subscribe") {
            let sde_name = body
                .child_ns(OGSI_NS, "ServiceDataName")
                .map(|e| e.text().trim().to_string())
                .filter(|s| !s.is_empty())
                .ok_or_else(|| Fault::sender("Subscribe requires a ServiceDataName"))?;
            let sink = body
                .child_ns(OGSI_NS, "Sink")
                .map(|e| e.text().trim().to_string())
                .filter(|s| !s.is_empty())
                .ok_or_else(|| Fault::sender("Subscribe requires a Sink locator"))?;
            let expires_ms = body
                .child_ns(OGSI_NS, "ExpirationTime")
                .and_then(|e| xsd::parse_datetime(e.text().trim()));
            let id = {
                let mut n = inner.next_id.lock();
                *n += 1;
                format!("ogsi-sub-{}", *n)
            };
            inner.subscriptions.lock().push(OgsiSubscription {
                id: id.clone(),
                sde_name,
                sink,
                expires_ms,
            });
            let resp = Element::ns(OGSI_NS, "SubscribeResponse", "ogsi")
                .with_child(Element::ns(OGSI_NS, "SubscriptionLocator", "ogsi").with_text(id));
            return Ok(Some(Envelope::new(SoapVersion::V11).with_body(resp)));
        }
        if body.name.is(OGSI_NS, "FindServiceData") {
            let name = body.text().trim().to_string();
            let mut resp = Element::ns(OGSI_NS, "FindServiceDataResponse", "ogsi");
            if let Some(v) = inner.sde.lock().get(&name) {
                resp.push(v.clone());
            }
            return Ok(Some(Envelope::new(SoapVersion::V11).with_body(resp)));
        }
        if body.name.is(OGSI_NS, "Destroy") {
            let id = body.text().trim().to_string();
            let mut subs = inner.subscriptions.lock();
            let before = subs.len();
            subs.retain(|s| s.id != id);
            if subs.len() == before {
                return Err(Fault::sender(format!("unknown subscription {id}")));
            }
            return Ok(Some(
                Envelope::new(SoapVersion::V11).with_body(Element::ns(
                    OGSI_NS,
                    "DestroyResponse",
                    "ogsi",
                )),
            ));
        }
        if body.name.is(OGSI_NS, "RequestTerminationAfter") {
            let id = body
                .child_ns(OGSI_NS, "SubscriptionLocator")
                .map(|e| e.text().trim().to_string())
                .ok_or_else(|| Fault::sender("missing SubscriptionLocator"))?;
            let when = body
                .child_ns(OGSI_NS, "TerminationTime")
                .and_then(|e| xsd::parse_datetime(e.text().trim()))
                .ok_or_else(|| Fault::sender("missing/invalid TerminationTime"))?;
            let mut subs = inner.subscriptions.lock();
            let sub = subs
                .iter_mut()
                .find(|s| s.id == id)
                .ok_or_else(|| Fault::sender(format!("unknown subscription {id}")))?;
            sub.expires_ms = Some(when);
            return Ok(Some(Envelope::new(SoapVersion::V11).with_body(
                Element::ns(OGSI_NS, "RequestTerminationAfterResponse", "ogsi"),
            )));
        }
        Err(Fault::sender(format!(
            "unsupported operation {}",
            body.name.clark()
        )))
    }
}

// -------------------------------------------------------------- sink

struct SinkInner {
    uri: String,
    received: Mutex<Vec<(String, Element)>>,
}

/// A NotificationSink: records pushed SDE changes.
#[derive(Clone)]
pub struct NotificationSink {
    inner: Arc<SinkInner>,
}

impl NotificationSink {
    /// Start a sink endpoint.
    pub fn start(net: &Network, uri: &str) -> Self {
        let inner = Arc::new(SinkInner {
            uri: uri.to_string(),
            received: Mutex::new(Vec::new()),
        });
        net.register(
            uri,
            Arc::new(SinkHandler {
                inner: Arc::clone(&inner),
            }),
        );
        NotificationSink { inner }
    }

    /// The sink URI.
    pub fn uri(&self) -> &str {
        &self.inner.uri
    }

    /// The sink's EPR.
    pub fn epr(&self) -> EndpointReference {
        EndpointReference::new(self.inner.uri.clone())
    }

    /// Received (service-data-name, value) pairs.
    pub fn received(&self) -> Vec<(String, Element)> {
        self.inner.received.lock().clone()
    }
}

struct SinkHandler {
    inner: Arc<SinkInner>,
}

impl SoapHandler for SinkHandler {
    fn handle(&self, request: Envelope) -> Result<Option<Envelope>, Fault> {
        let body = request.body().ok_or_else(|| Fault::sender("empty body"))?;
        if body.name.is(OGSI_NS, "DeliverNotification") {
            let name = body
                .child_ns(OGSI_NS, "ServiceDataName")
                .map(|e| e.text().trim().to_string())
                .unwrap_or_default();
            if let Some(value) = body
                .child_ns(OGSI_NS, "ServiceDataValues")
                .and_then(|v| v.elements().next())
            {
                self.inner.received.lock().push((name, value.clone()));
            }
        }
        Ok(None)
    }
}

/// Client helper: subscribe a sink to a source's SDE by name.
pub fn subscribe(
    net: &Network,
    source_uri: &str,
    sde_name: &str,
    sink_uri: &str,
    expires_ms: Option<u64>,
) -> Result<String, TransportError> {
    let mut body = Element::ns(OGSI_NS, "Subscribe", "ogsi")
        .with_child(Element::ns(OGSI_NS, "ServiceDataName", "ogsi").with_text(sde_name))
        .with_child(Element::ns(OGSI_NS, "Sink", "ogsi").with_text(sink_uri));
    if let Some(t) = expires_ms {
        body.push(
            Element::ns(OGSI_NS, "ExpirationTime", "ogsi").with_text(xsd::format_datetime(t)),
        );
    }
    let mut env = Envelope::new(SoapVersion::V11).with_body(body);
    MessageHeaders::request(source_uri, format!("{OGSI_NS}/Subscribe"))
        .apply(&mut env, WsaVersion::V200303);
    let resp = net.request(source_uri, env)?;
    resp.body()
        .and_then(|b| b.child_ns(OGSI_NS, "SubscriptionLocator"))
        .map(|e| e.text().trim().to_string())
        .ok_or_else(|| TransportError::NoResponse(source_uri.to_string()))
}

/// Client helper: destroy a subscription.
pub fn destroy(
    net: &Network,
    source_uri: &str,
    subscription_id: &str,
) -> Result<(), TransportError> {
    let body = Element::ns(OGSI_NS, "Destroy", "ogsi").with_text(subscription_id);
    let env = Envelope::new(SoapVersion::V11).with_body(body);
    net.request(source_uri, env).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Network, NotificationSource, NotificationSink) {
        let net = Network::new();
        let source = NotificationSource::start(&net, "http://grid/svc");
        let sink = NotificationSink::start(&net, "http://grid/sink");
        (net, source, sink)
    }

    #[test]
    fn sde_change_pushes_to_subscribed_sink() {
        let (net, source, sink) = setup();
        subscribe(&net, source.uri(), "jobStatus", sink.uri(), None).unwrap();
        source.set_service_data("jobStatus", Element::local("status").with_text("RUNNING"));
        source.set_service_data("cpuLoad", Element::local("load").with_text("0.9"));
        let got = sink.received();
        assert_eq!(got.len(), 1, "only the subscribed SDE notifies");
        assert_eq!(got[0].0, "jobStatus");
        assert_eq!(got[0].1.text(), "RUNNING");
    }

    #[test]
    fn find_service_data() {
        let (_net, source, _sink) = setup();
        assert!(source.find_service_data("x").is_none());
        source.set_service_data("x", Element::local("v").with_text("1"));
        assert_eq!(source.find_service_data("x").unwrap().text(), "1");
    }

    #[test]
    fn destroy_ends_subscription() {
        let (net, source, sink) = setup();
        let id = subscribe(&net, source.uri(), "s", sink.uri(), None).unwrap();
        assert_eq!(source.subscription_count(), 1);
        destroy(&net, source.uri(), &id).unwrap();
        assert_eq!(source.subscription_count(), 0);
        source.set_service_data("s", Element::local("v"));
        assert!(sink.received().is_empty());
        assert!(
            destroy(&net, source.uri(), &id).is_err(),
            "double destroy faults"
        );
    }

    #[test]
    fn expiration_is_absolute_time() {
        let (net, source, sink) = setup();
        subscribe(&net, source.uri(), "s", sink.uri(), Some(1_000)).unwrap();
        source.set_service_data("s", Element::local("v1"));
        net.clock().advance_ms(2_000);
        source.set_service_data("s", Element::local("v2"));
        assert_eq!(sink.received().len(), 1, "expired subscription swept");
        assert_eq!(source.subscription_count(), 0);
    }

    #[test]
    fn dead_sink_subscription_removed() {
        let (net, source, _sink) = setup();
        subscribe(&net, source.uri(), "s", "http://nowhere", None).unwrap();
        assert_eq!(source.set_service_data("s", Element::local("v")), 0);
        assert_eq!(source.subscription_count(), 0);
        let _ = net;
    }

    #[test]
    fn multiple_sinks_fan_out() {
        let (net, source, sink) = setup();
        let sink2 = NotificationSink::start(&net, "http://grid/sink2");
        subscribe(&net, source.uri(), "s", sink.uri(), None).unwrap();
        subscribe(&net, source.uri(), "s", sink2.uri(), None).unwrap();
        assert_eq!(source.set_service_data("s", Element::local("v")), 2);
        assert_eq!(sink.received().len(), 1);
        assert_eq!(sink2.received().len(), 1);
    }
}
