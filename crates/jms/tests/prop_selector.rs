//! Property tests for the JMS selector: SQL92 semantics against oracle
//! computations, and provider delivery invariants.

use proptest::prelude::*;
use wsm_jms::{JmsMessage, JmsProvider, Selector};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Numeric comparisons agree with Rust.
    #[test]
    fn comparisons_agree(v in -50i64..50, t in -50i64..50) {
        let m = JmsMessage::text("x").with_property("v", v);
        for (op, expect) in [
            ("=", v == t), ("<>", v != t), ("<", v < t),
            ("<=", v <= t), (">", v > t), (">=", v >= t),
        ] {
            let s = Selector::compile(&format!("v {op} {t}")).unwrap();
            prop_assert_eq!(s.matches(&m), expect, "v {} {} {}", v, op, t);
        }
    }

    /// BETWEEN is inclusive on both ends and equals the conjunction.
    #[test]
    fn between_equals_conjunction(v in -20i64..20, lo in -20i64..20, hi in -20i64..20) {
        let m = JmsMessage::text("x").with_property("v", v);
        let between = Selector::compile(&format!("v BETWEEN {lo} AND {hi}")).unwrap();
        let conj = Selector::compile(&format!("v >= {lo} AND v <= {hi}")).unwrap();
        prop_assert_eq!(between.matches(&m), conj.matches(&m));
    }

    /// LIKE with only literal characters is equality; `%` prefix/suffix
    /// behave like starts_with/ends_with.
    #[test]
    fn like_against_oracle(s in "[a-z]{0,10}", pat in "[a-z]{0,6}") {
        let m = JmsMessage::text("x").with_property("s", s.as_str());
        let exact = Selector::compile(&format!("s LIKE '{pat}'")).unwrap();
        prop_assert_eq!(exact.matches(&m), s == pat);
        let prefix = Selector::compile(&format!("s LIKE '{pat}%'")).unwrap();
        prop_assert_eq!(prefix.matches(&m), s.starts_with(&pat));
        let suffix = Selector::compile(&format!("s LIKE '%{pat}'")).unwrap();
        prop_assert_eq!(suffix.matches(&m), s.ends_with(&pat));
        let inner = Selector::compile(&format!("s LIKE '%{pat}%'")).unwrap();
        prop_assert_eq!(inner.matches(&m), s.contains(&pat));
    }

    /// Three-valued logic: with a missing property, both a predicate
    /// and its negation fail to match, but IS NULL sees it.
    #[test]
    fn null_semantics(t in -50i64..50) {
        let m = JmsMessage::text("x");
        let pos = Selector::compile(&format!("missing = {t}")).unwrap();
        let neg = Selector::compile(&format!("NOT (missing = {t})")).unwrap();
        prop_assert!(!pos.matches(&m));
        prop_assert!(!neg.matches(&m));
        prop_assert!(Selector::compile("missing IS NULL").unwrap().matches(&m));
    }

    /// Queue delivery: each sent message is received exactly once, in
    /// priority-then-FIFO order.
    #[test]
    fn queue_exactly_once_priority_order(prios in prop::collection::vec(0u8..10, 1..20)) {
        let p = JmsProvider::new();
        for (i, prio) in prios.iter().enumerate() {
            p.send("q", JmsMessage::text(format!("m{i}")).with_priority(*prio));
        }
        let mut received: Vec<(u8, usize)> = Vec::new();
        while let Some(m) = p.receive("q", None) {
            let idx: usize = match &m.body {
                wsm_jms::JmsBody::Text(t) => t[1..].parse().unwrap(),
                _ => unreachable!(),
            };
            received.push((m.priority, idx));
        }
        prop_assert_eq!(received.len(), prios.len(), "exactly once");
        // Non-increasing priority; FIFO within equal priority.
        for w in received.windows(2) {
            prop_assert!(w[0].0 >= w[1].0, "priority order: {:?}", received);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO within priority: {:?}", received);
            }
        }
    }

    /// Topic fanout: every connected subscriber whose selector matches
    /// receives a copy; counts agree with an oracle.
    #[test]
    fn topic_fanout_counts(sevs in prop::collection::vec(0i64..10, 1..16)) {
        let p = JmsProvider::new();
        let all = p.create_subscriber("t", None);
        let hot = p.create_subscriber("t", Some(Selector::compile("sev >= 5").unwrap()));
        let mut expected_hot = 0;
        for sev in &sevs {
            if *sev >= 5 {
                expected_hot += 1;
            }
            p.publish("t", JmsMessage::text("x").with_property("sev", *sev));
        }
        prop_assert_eq!(all.pending(), sevs.len());
        prop_assert_eq!(hot.pending(), expected_hot);
    }
}
