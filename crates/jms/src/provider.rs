//! The JMS provider: queues, topics, durable subscribers,
//! transactions.

use crate::message::JmsMessage;
use crate::selector::Selector;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

#[derive(Default)]
struct Queue {
    /// Kept sorted by (priority desc, arrival order asc).
    messages: VecDeque<JmsMessage>,
}

struct TopicSubscriber {
    id: u64,
    selector: Option<Selector>,
    buffer: Arc<Mutex<VecDeque<JmsMessage>>>,
    /// Durable subscriptions have a name and keep receiving (buffering)
    /// while disconnected.
    durable_name: Option<String>,
    connected: bool,
}

#[derive(Default)]
struct Topic {
    subscribers: Vec<TopicSubscriber>,
}

#[derive(Default)]
struct ProviderInner {
    queues: Mutex<HashMap<String, Queue>>,
    topics: Mutex<HashMap<String, Topic>>,
    clock: Mutex<u64>,
    next_id: Mutex<u64>,
}

/// An in-process JMS provider.
#[derive(Clone, Default)]
pub struct JmsProvider {
    inner: Arc<ProviderInner>,
}

/// A pub/sub subscription handle.
pub struct TopicSubscription {
    inner: Arc<ProviderInner>,
    topic: String,
    id: u64,
    buffer: Arc<Mutex<VecDeque<JmsMessage>>>,
}

impl JmsProvider {
    /// A fresh provider.
    pub fn new() -> Self {
        JmsProvider::default()
    }

    /// Advance the provider's virtual clock (drives `JMSExpiration`).
    pub fn advance_clock(&self, ms: u64) {
        *self.inner.clock.lock() += ms;
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        *self.inner.clock.lock()
    }

    fn stamp(&self, mut m: JmsMessage, destination: &str) -> JmsMessage {
        let id = {
            let mut n = self.inner.next_id.lock();
            *n += 1;
            *n
        };
        m.message_id = Some(format!("ID:wsm-jms-{id}"));
        m.destination = Some(destination.to_string());
        m.timestamp = self.now();
        m
    }

    // ------------------------------------------------- point-to-point

    /// Send a message to a queue (creates the queue on first use).
    pub fn send(&self, queue: &str, message: JmsMessage) {
        let m = self.stamp(message, queue);
        let mut queues = self.inner.queues.lock();
        let q = queues.entry(queue.to_string()).or_default();
        // Priority ordering: insert after the last message of >= priority.
        let pos = q
            .messages
            .iter()
            .position(|existing| existing.priority < m.priority)
            .unwrap_or(q.messages.len());
        q.messages.insert(pos, m);
    }

    /// Receive the next message from a queue (optionally matching a
    /// selector). Exactly one consumer sees each message — the
    /// point-to-point style.
    pub fn receive(&self, queue: &str, selector: Option<&Selector>) -> Option<JmsMessage> {
        let now = self.now();
        let mut queues = self.inner.queues.lock();
        let q = queues.get_mut(queue)?;
        q.messages.retain(|m| !m.expired(now));
        let idx = match selector {
            None => {
                if q.messages.is_empty() {
                    return None;
                }
                0
            }
            Some(sel) => q.messages.iter().position(|m| sel.matches(m))?,
        };
        q.messages.remove(idx)
    }

    /// Queue depth (expired messages excluded).
    pub fn queue_depth(&self, queue: &str) -> usize {
        let now = self.now();
        self.inner
            .queues
            .lock()
            .get(queue)
            .map(|q| q.messages.iter().filter(|m| !m.expired(now)).count())
            .unwrap_or(0)
    }

    // ----------------------------------------------------- pub/sub

    /// Create a (non-durable) topic subscription.
    pub fn create_subscriber(&self, topic: &str, selector: Option<Selector>) -> TopicSubscription {
        self.subscribe_inner(topic, selector, None)
    }

    /// Create or reconnect a durable subscription.
    ///
    /// Reconnecting with the name of an existing durable subscription
    /// resumes it — messages published while disconnected are waiting.
    pub fn create_durable_subscriber(
        &self,
        topic: &str,
        name: &str,
        selector: Option<Selector>,
    ) -> TopicSubscription {
        // Resume if the durable subscription exists.
        {
            let mut topics = self.inner.topics.lock();
            if let Some(t) = topics.get_mut(topic) {
                if let Some(existing) = t
                    .subscribers
                    .iter_mut()
                    .find(|s| s.durable_name.as_deref() == Some(name))
                {
                    existing.connected = true;
                    return TopicSubscription {
                        inner: Arc::clone(&self.inner),
                        topic: topic.to_string(),
                        id: existing.id,
                        buffer: Arc::clone(&existing.buffer),
                    };
                }
            }
        }
        self.subscribe_inner(topic, selector, Some(name.to_string()))
    }

    fn subscribe_inner(
        &self,
        topic: &str,
        selector: Option<Selector>,
        durable_name: Option<String>,
    ) -> TopicSubscription {
        let id = {
            let mut n = self.inner.next_id.lock();
            *n += 1;
            *n
        };
        let buffer = Arc::new(Mutex::new(VecDeque::new()));
        let mut topics = self.inner.topics.lock();
        topics
            .entry(topic.to_string())
            .or_default()
            .subscribers
            .push(TopicSubscriber {
                id,
                selector,
                buffer: Arc::clone(&buffer),
                durable_name,
                connected: true,
            });
        TopicSubscription {
            inner: Arc::clone(&self.inner),
            topic: topic.to_string(),
            id,
            buffer,
        }
    }

    /// Publish a message to a topic: every matching subscriber gets a
    /// copy (durable ones even while disconnected).
    pub fn publish(&self, topic: &str, message: JmsMessage) -> usize {
        let m = self.stamp(message, topic);
        let mut topics = self.inner.topics.lock();
        let Some(t) = topics.get_mut(topic) else {
            return 0;
        };
        let mut delivered = 0;
        for s in &t.subscribers {
            let eligible = s.connected || s.durable_name.is_some();
            if !eligible {
                continue;
            }
            if s.selector
                .as_ref()
                .map(|sel| sel.matches(&m))
                .unwrap_or(true)
            {
                s.buffer.lock().push_back(m.clone());
                delivered += 1;
            }
        }
        delivered
    }

    /// Number of subscribers (connected or durable-disconnected).
    pub fn subscriber_count(&self, topic: &str) -> usize {
        self.inner
            .topics
            .lock()
            .get(topic)
            .map(|t| t.subscribers.len())
            .unwrap_or(0)
    }

    /// Begin a transacted session.
    pub fn transacted_session(&self) -> TransactedSession {
        TransactedSession {
            provider: self.clone(),
            pending: Vec::new(),
        }
    }
}

impl TopicSubscription {
    /// Receive the next buffered message.
    pub fn receive(&self) -> Option<JmsMessage> {
        let now = *self.inner.clock.lock();
        let mut buf = self.buffer.lock();
        while let Some(m) = buf.pop_front() {
            if !m.expired(now) {
                return Some(m);
            }
        }
        None
    }

    /// Buffered message count.
    pub fn pending(&self) -> usize {
        self.buffer.lock().len()
    }

    /// Disconnect. Non-durable subscriptions are removed; durable ones
    /// stay registered and keep buffering.
    pub fn disconnect(&self) {
        let mut topics = self.inner.topics.lock();
        if let Some(t) = topics.get_mut(&self.topic) {
            if let Some(pos) = t.subscribers.iter().position(|s| s.id == self.id) {
                if t.subscribers[pos].durable_name.is_some() {
                    t.subscribers[pos].connected = false;
                } else {
                    t.subscribers.remove(pos);
                }
            }
        }
    }

    /// Permanently remove a durable subscription (`unsubscribe`).
    pub fn unsubscribe(&self) {
        let mut topics = self.inner.topics.lock();
        if let Some(t) = topics.get_mut(&self.topic) {
            t.subscribers.retain(|s| s.id != self.id);
        }
    }
}

/// A transacted session: sends/publishes are buffered until `commit`.
pub struct TransactedSession {
    provider: JmsProvider,
    pending: Vec<(Destination, JmsMessage)>,
}

enum Destination {
    Queue(String),
    Topic(String),
}

impl TransactedSession {
    /// Buffer a queue send.
    pub fn send(&mut self, queue: &str, message: JmsMessage) {
        self.pending
            .push((Destination::Queue(queue.to_string()), message));
    }

    /// Buffer a topic publish.
    pub fn publish(&mut self, topic: &str, message: JmsMessage) {
        self.pending
            .push((Destination::Topic(topic.to_string()), message));
    }

    /// Deliver everything buffered, atomically from consumers'
    /// perspective (all-or-nothing under this single-process sim).
    pub fn commit(&mut self) {
        for (dest, m) in self.pending.drain(..) {
            match dest {
                Destination::Queue(q) => self.provider.send(&q, m),
                Destination::Topic(t) => {
                    self.provider.publish(&t, m);
                }
            }
        }
    }

    /// Discard everything buffered.
    pub fn rollback(&mut self) {
        self.pending.clear();
    }

    /// Number of buffered operations.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::DeliveryMode;

    #[test]
    fn queue_is_point_to_point() {
        let p = JmsProvider::new();
        p.send("q", JmsMessage::text("a"));
        p.send("q", JmsMessage::text("b"));
        assert_eq!(p.queue_depth("q"), 2);
        // Two consumers: each message is received exactly once.
        let m1 = p.receive("q", None).unwrap();
        let m2 = p.receive("q", None).unwrap();
        assert_ne!(m1.message_id, m2.message_id);
        assert!(p.receive("q", None).is_none());
    }

    #[test]
    fn queue_priority_ordering() {
        let p = JmsProvider::new();
        p.send("q", JmsMessage::text("low").with_priority(1));
        p.send("q", JmsMessage::text("high").with_priority(9));
        p.send("q", JmsMessage::text("mid").with_priority(5));
        p.send("q", JmsMessage::text("high2").with_priority(9));
        let order: Vec<String> = std::iter::from_fn(|| p.receive("q", None))
            .map(|m| match m.body {
                crate::message::JmsBody::Text(t) => t,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            order,
            vec!["high", "high2", "mid", "low"],
            "priority desc, FIFO within"
        );
    }

    #[test]
    fn queue_selector_receives_first_match() {
        let p = JmsProvider::new();
        p.send("q", JmsMessage::text("a").with_property("sev", 1i64));
        p.send("q", JmsMessage::text("b").with_property("sev", 5i64));
        let sel = Selector::compile("sev > 3").unwrap();
        let got = p.receive("q", Some(&sel)).unwrap();
        assert_eq!(got.resolve("sev"), crate::message::JmsValue::Int(5));
        assert_eq!(p.queue_depth("q"), 1, "non-matching message remains");
    }

    #[test]
    fn queue_expiration() {
        let p = JmsProvider::new();
        p.send("q", JmsMessage::text("x").with_expiration(100));
        p.advance_clock(200);
        assert_eq!(p.queue_depth("q"), 0);
        assert!(p.receive("q", None).is_none());
    }

    #[test]
    fn topic_fanout_with_selectors() {
        let p = JmsProvider::new();
        let all = p.create_subscriber("t", None);
        let hot = p.create_subscriber("t", Some(Selector::compile("sev >= 5").unwrap()));
        assert_eq!(
            p.publish("t", JmsMessage::text("a").with_property("sev", 1i64)),
            1
        );
        assert_eq!(
            p.publish("t", JmsMessage::text("b").with_property("sev", 9i64)),
            2
        );
        assert_eq!(all.pending(), 2);
        assert_eq!(hot.pending(), 1);
    }

    #[test]
    fn nondurable_subscriber_misses_while_disconnected() {
        let p = JmsProvider::new();
        let sub = p.create_subscriber("t", None);
        p.publish("t", JmsMessage::text("m1"));
        sub.disconnect();
        p.publish("t", JmsMessage::text("m2"));
        assert_eq!(sub.pending(), 1, "only m1 (buffer retained client-side)");
        assert_eq!(p.subscriber_count("t"), 0);
    }

    #[test]
    fn durable_subscriber_survives_disconnect() {
        let p = JmsProvider::new();
        let sub = p.create_durable_subscriber("t", "audit", None);
        p.publish("t", JmsMessage::text("m1"));
        sub.disconnect();
        p.publish("t", JmsMessage::text("m2"));
        // Reconnect with the same name: m2 was buffered.
        let sub2 = p.create_durable_subscriber("t", "audit", None);
        assert_eq!(sub2.pending(), 2);
        sub2.unsubscribe();
        assert_eq!(p.subscriber_count("t"), 0);
        p.publish("t", JmsMessage::text("m3"));
        assert_eq!(sub2.pending(), 2, "after unsubscribe nothing arrives");
    }

    #[test]
    fn transactions_commit_and_rollback() {
        let p = JmsProvider::new();
        let sub = p.create_subscriber("t", None);
        let mut tx = p.transacted_session();
        tx.send("q", JmsMessage::text("a"));
        tx.publish("t", JmsMessage::text("b"));
        assert_eq!(tx.pending_count(), 2);
        assert_eq!(p.queue_depth("q"), 0, "nothing visible before commit");
        assert_eq!(sub.pending(), 0);
        tx.commit();
        assert_eq!(p.queue_depth("q"), 1);
        assert_eq!(sub.pending(), 1);

        let mut tx2 = p.transacted_session();
        tx2.send("q", JmsMessage::text("c"));
        tx2.rollback();
        tx2.commit();
        assert_eq!(p.queue_depth("q"), 1, "rolled-back send never lands");
    }

    #[test]
    fn message_ordering_within_topic() {
        let p = JmsProvider::new();
        let sub = p.create_subscriber("t", None);
        for i in 0..5 {
            p.publish("t", JmsMessage::text(format!("m{i}")));
        }
        let order: Vec<String> = std::iter::from_fn(|| sub.receive())
            .map(|m| match m.body {
                crate::message::JmsBody::Text(t) => t,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec!["m0", "m1", "m2", "m3", "m4"]);
    }

    #[test]
    fn expired_topic_messages_skipped_on_receive() {
        let p = JmsProvider::new();
        let sub = p.create_subscriber("t", None);
        p.publish("t", JmsMessage::text("short").with_expiration(100));
        p.publish("t", JmsMessage::text("long"));
        p.advance_clock(200);
        let got = sub.receive().unwrap();
        assert!(matches!(got.body, crate::message::JmsBody::Text(ref t) if t == "long"));
    }

    #[test]
    fn delivery_mode_preserved() {
        let p = JmsProvider::new();
        p.send(
            "q",
            JmsMessage::text("x").with_delivery_mode(DeliveryMode::NonPersistent),
        );
        assert_eq!(
            p.receive("q", None).unwrap().delivery_mode,
            DeliveryMode::NonPersistent
        );
    }
}
