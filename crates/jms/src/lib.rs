#![warn(missing_docs)]
//! # wsm-jms — Java Message Service 1.1 simulation
//!
//! One of the Table 3 columns: the paper's §VI.B summarizes JMS as
//! defining "the point-to-point message queue style and the
//! publish/subscribe style", five message types (`TextMessage`,
//! `BytesMessage`, `MapMessage`, `StreamMessage`, `ObjectMessage`),
//! message selectors whose syntax is "a subset of the SQL92 conditional
//! expression syntax" evaluated over header fields and properties, and
//! QoS criteria "priority, persistence, durability, transaction and
//! message order". All of those are implemented here:
//!
//! * [`JmsMessage`] — the five bodies, the standard `JMS*` header
//!   fields, and typed properties;
//! * [`selector::Selector`] — a real SQL92-subset parser/evaluator with
//!   SQL three-valued logic (`NULL` propagation), `BETWEEN`, `IN`,
//!   `LIKE`/`ESCAPE` and `IS [NOT] NULL`;
//! * [`JmsProvider`] — queues (PTP, priority-ordered, expiration),
//!   topics (pub/sub, durable subscribers), and transacted sessions.
//!
//! Besides backing Table 3, this substrate is what WS-Messenger wraps
//! to demonstrate the paper's "use existing publish/subscribe systems
//! as the underlying message systems" claim.

pub mod message;
pub mod provider;
pub mod selector;

pub use message::{DeliveryMode, JmsBody, JmsMessage, JmsValue};
pub use provider::{JmsProvider, TopicSubscription, TransactedSession};
pub use selector::Selector;
