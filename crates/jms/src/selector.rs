//! JMS message selectors: the SQL92-conditional-expression subset.
//!
//! Table 3's "Filter language" row for JMS reads "a subset of the SQL92
//! conditional expression syntax". This module implements that subset
//! with SQL three-valued logic: comparisons involving `NULL` are
//! *unknown*, `AND`/`OR`/`NOT` follow the 3VL truth tables, and a
//! selector matches only when the whole expression is definitely true —
//! the detail that makes `NOT (x = 1)` differ from `x <> 1` on messages
//! lacking `x`.
//!
//! ```
//! use wsm_jms::{JmsMessage, Selector};
//!
//! let s = Selector::compile("severity >= 3 AND site LIKE 'iu%'").unwrap();
//! let m = JmsMessage::text("x").with_property("severity", 4i64).with_property("site", "iu-b618");
//! assert!(s.matches(&m));
//! ```

use crate::message::{JmsMessage, JmsValue};
use std::fmt;

/// Selector parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectorError {
    /// Byte offset.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SelectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "selector syntax error at {}: {}", self.at, self.message)
    }
}

impl std::error::Error for SelectorError {}

/// SQL 3-valued logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    True,
    False,
    Unknown,
}

impl Tri {
    fn of(b: bool) -> Tri {
        if b {
            Tri::True
        } else {
            Tri::False
        }
    }

    fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::False, _) | (_, Tri::False) => Tri::False,
            (Tri::True, Tri::True) => Tri::True,
            _ => Tri::Unknown,
        }
    }

    fn or(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::True, _) | (_, Tri::True) => Tri::True,
            (Tri::False, Tri::False) => Tri::False,
            _ => Tri::Unknown,
        }
    }

    fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Kw(&'static str),
    Num(f64),
    Str(String),
    Op(&'static str),
    LParen,
    RParen,
    Comma,
}

const KEYWORDS: [&str; 12] = [
    "AND", "OR", "NOT", "BETWEEN", "IN", "LIKE", "ESCAPE", "IS", "NULL", "TRUE", "FALSE", "NOT",
];

fn tokenize(s: &str) -> Result<Vec<(usize, Tok)>, SelectorError> {
    let b = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            b')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            b',' => {
                out.push((i, Tok::Comma));
                i += 1;
            }
            b'+' | b'-' | b'*' | b'/' => {
                out.push((
                    i,
                    Tok::Op(match c {
                        b'+' => "+",
                        b'-' => "-",
                        b'*' => "*",
                        _ => "/",
                    }),
                ));
                i += 1;
            }
            b'=' => {
                out.push((i, Tok::Op("=")));
                i += 1;
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'>') {
                    out.push((i, Tok::Op("<>")));
                    i += 2;
                } else if b.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Op("<=")));
                    i += 2;
                } else {
                    out.push((i, Tok::Op("<")));
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Op(">=")));
                    i += 2;
                } else {
                    out.push((i, Tok::Op(">")));
                    i += 1;
                }
            }
            b'\'' => {
                // SQL string literal; '' is an escaped quote.
                let mut text = String::new();
                let mut j = i + 1;
                loop {
                    match b.get(j) {
                        None => {
                            return Err(SelectorError {
                                at: i,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(b'\'') => {
                            if b.get(j + 1) == Some(&b'\'') {
                                text.push('\'');
                                j += 2;
                            } else {
                                j += 1;
                                break;
                            }
                        }
                        Some(&ch) => {
                            text.push(ch as char);
                            j += 1;
                        }
                    }
                }
                out.push((i, Tok::Str(text)));
                i = j;
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                let n: f64 = s[start..i].parse().map_err(|_| SelectorError {
                    at: start,
                    message: "bad number".into(),
                })?;
                out.push((start, Tok::Num(n)));
            }
            _ if c.is_ascii_alphabetic() || c == b'_' || c == b'$' => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric()
                        || b[i] == b'_'
                        || b[i] == b'$'
                        || b[i] == b'.')
                {
                    i += 1;
                }
                let word = &s[start..i];
                let upper = word.to_uppercase();
                if let Some(kw) = KEYWORDS.iter().find(|k| **k == upper) {
                    out.push((start, Tok::Kw(kw)));
                } else {
                    out.push((start, Tok::Ident(word.to_string())));
                }
            }
            _ => {
                return Err(SelectorError {
                    at: i,
                    message: format!("unexpected character `{}`", c as char),
                })
            }
        }
    }
    Ok(out)
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Ident(String),
    Num(f64),
    Str(String),
    Bool(bool),
    Arith(&'static str, Box<Node>, Box<Node>),
    Neg(Box<Node>),
    Cmp(&'static str, Box<Node>, Box<Node>),
    Between {
        value: Box<Node>,
        low: Box<Node>,
        high: Box<Node>,
        negated: bool,
    },
    In {
        value: Box<Node>,
        list: Vec<String>,
        negated: bool,
    },
    Like {
        value: Box<Node>,
        pattern: String,
        escape: Option<char>,
        negated: bool,
    },
    IsNull {
        value: Box<Node>,
        negated: bool,
    },
    And(Box<Node>, Box<Node>),
    Or(Box<Node>, Box<Node>),
    Not(Box<Node>),
}

/// A compiled JMS message selector.
#[derive(Debug, Clone, PartialEq)]
pub struct Selector {
    root: Node,
    source: String,
}

impl Selector {
    /// Compile a selector expression.
    pub fn compile(source: &str) -> Result<Self, SelectorError> {
        let toks = tokenize(source)?;
        if toks.is_empty() {
            return Err(SelectorError {
                at: 0,
                message: "empty selector".into(),
            });
        }
        let mut p = P { toks, pos: 0 };
        let root = p.or()?;
        if p.pos != p.toks.len() {
            return Err(SelectorError {
                at: p.at(),
                message: "trailing tokens".into(),
            });
        }
        Ok(Selector {
            root,
            source: source.to_string(),
        })
    }

    /// The original selector text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Does the message satisfy the selector? (`unknown` = no match.)
    pub fn matches(&self, message: &JmsMessage) -> bool {
        eval_bool(&self.root, message) == Tri::True
    }
}

struct P {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl P {
    fn at(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(i, _)| *i)
            .unwrap_or(usize::MAX)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek()
            == Some(&Tok::Kw(match kw {
                "AND" => "AND",
                "OR" => "OR",
                "NOT" => "NOT",
                "BETWEEN" => "BETWEEN",
                "IN" => "IN",
                "LIKE" => "LIKE",
                "ESCAPE" => "ESCAPE",
                "IS" => "IS",
                "NULL" => "NULL",
                "TRUE" => "TRUE",
                "FALSE" => "FALSE",
                _ => return false,
            }))
        {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if let Some(Tok::Op(o)) = self.peek() {
            if *o == op {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn err(&self, message: impl Into<String>) -> SelectorError {
        SelectorError {
            at: self.at(),
            message: message.into(),
        }
    }

    fn or(&mut self) -> Result<Node, SelectorError> {
        let mut l = self.and()?;
        while self.eat_kw("OR") {
            l = Node::Or(Box::new(l), Box::new(self.and()?));
        }
        Ok(l)
    }

    fn and(&mut self) -> Result<Node, SelectorError> {
        let mut l = self.not()?;
        while self.eat_kw("AND") {
            l = Node::And(Box::new(l), Box::new(self.not()?));
        }
        Ok(l)
    }

    fn not(&mut self) -> Result<Node, SelectorError> {
        if self.eat_kw("NOT") {
            Ok(Node::Not(Box::new(self.not()?)))
        } else {
            self.predicate()
        }
    }

    /// A comparison / BETWEEN / IN / LIKE / IS NULL over arithmetic
    /// expressions, or a bare boolean primary.
    fn predicate(&mut self) -> Result<Node, SelectorError> {
        let left = self.additive()?;
        // Optional NOT before BETWEEN/IN/LIKE.
        let negated = self.eat_kw("NOT");
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            if !self.eat_kw("AND") {
                return Err(self.err("BETWEEN requires AND"));
            }
            let high = self.additive()?;
            return Ok(Node::Between {
                value: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("IN") {
            if self.bump() != Some(Tok::LParen) {
                return Err(self.err("IN requires a parenthesized list"));
            }
            let mut list = Vec::new();
            loop {
                match self.bump() {
                    Some(Tok::Str(s)) => list.push(s),
                    other => {
                        return Err(self.err(format!("IN list expects strings, got {other:?}")))
                    }
                }
                match self.bump() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    other => return Err(self.err(format!("expected `,` or `)`, got {other:?}"))),
                }
            }
            return Ok(Node::In {
                value: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = match self.bump() {
                Some(Tok::Str(s)) => s,
                other => {
                    return Err(self.err(format!("LIKE expects a string pattern, got {other:?}")))
                }
            };
            let escape = if self.eat_kw("ESCAPE") {
                match self.bump() {
                    Some(Tok::Str(s)) if s.chars().count() == 1 => s.chars().next(),
                    _ => return Err(self.err("ESCAPE expects a single-character string")),
                }
            } else {
                None
            };
            return Ok(Node::Like {
                value: Box::new(left),
                pattern,
                escape,
                negated,
            });
        }
        if negated {
            return Err(self.err("dangling NOT"));
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            if !self.eat_kw("NULL") {
                return Err(self.err("IS requires NULL"));
            }
            return Ok(Node::IsNull {
                value: Box::new(left),
                negated,
            });
        }
        for op in ["=", "<>", "<=", ">=", "<", ">"] {
            if self.eat_op(op) {
                let right = self.additive()?;
                return Ok(Node::Cmp(
                    match op {
                        "=" => "=",
                        "<>" => "<>",
                        "<=" => "<=",
                        ">=" => ">=",
                        "<" => "<",
                        _ => ">",
                    },
                    Box::new(left),
                    Box::new(right),
                ));
            }
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Node, SelectorError> {
        let mut l = self.multiplicative()?;
        loop {
            if self.eat_op("+") {
                l = Node::Arith("+", Box::new(l), Box::new(self.multiplicative()?));
            } else if self.eat_op("-") {
                l = Node::Arith("-", Box::new(l), Box::new(self.multiplicative()?));
            } else {
                return Ok(l);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Node, SelectorError> {
        let mut l = self.unary()?;
        loop {
            if self.eat_op("*") {
                l = Node::Arith("*", Box::new(l), Box::new(self.unary()?));
            } else if self.eat_op("/") {
                l = Node::Arith("/", Box::new(l), Box::new(self.unary()?));
            } else {
                return Ok(l);
            }
        }
    }

    fn unary(&mut self) -> Result<Node, SelectorError> {
        if self.eat_op("-") {
            return Ok(Node::Neg(Box::new(self.unary()?)));
        }
        if self.eat_op("+") {
            return self.unary();
        }
        match self.bump() {
            Some(Tok::Num(n)) => Ok(Node::Num(n)),
            Some(Tok::Str(s)) => Ok(Node::Str(s)),
            Some(Tok::Ident(id)) => Ok(Node::Ident(id)),
            Some(Tok::Kw("TRUE")) => Ok(Node::Bool(true)),
            Some(Tok::Kw("FALSE")) => Ok(Node::Bool(false)),
            Some(Tok::LParen) => {
                let e = self.or()?;
                if self.bump() != Some(Tok::RParen) {
                    return Err(self.err("expected `)`"));
                }
                Ok(e)
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

fn eval_value(node: &Node, m: &JmsMessage) -> JmsValue {
    match node {
        Node::Ident(id) => m.resolve(id),
        Node::Num(n) => JmsValue::Double(*n),
        Node::Str(s) => JmsValue::String(s.clone()),
        Node::Bool(b) => JmsValue::Bool(*b),
        Node::Neg(e) => match eval_value(e, m).as_f64() {
            Some(n) => JmsValue::Double(-n),
            None => JmsValue::Null,
        },
        Node::Arith(op, l, r) => match (eval_value(l, m).as_f64(), eval_value(r, m).as_f64()) {
            (Some(a), Some(b)) => JmsValue::Double(match *op {
                "+" => a + b,
                "-" => a - b,
                "*" => a * b,
                _ => a / b,
            }),
            _ => JmsValue::Null,
        },
        // Boolean sub-expressions used as values.
        other => match eval_bool(other, m) {
            Tri::True => JmsValue::Bool(true),
            Tri::False => JmsValue::Bool(false),
            Tri::Unknown => JmsValue::Null,
        },
    }
}

fn eval_bool(node: &Node, m: &JmsMessage) -> Tri {
    match node {
        Node::And(l, r) => eval_bool(l, m).and(eval_bool(r, m)),
        Node::Or(l, r) => eval_bool(l, m).or(eval_bool(r, m)),
        Node::Not(e) => eval_bool(e, m).not(),
        Node::Bool(b) => Tri::of(*b),
        Node::Ident(id) => match m.resolve(id) {
            JmsValue::Bool(b) => Tri::of(b),
            JmsValue::Null => Tri::Unknown,
            _ => Tri::False,
        },
        Node::Cmp(op, l, r) => {
            let (lv, rv) = (eval_value(l, m), eval_value(r, m));
            if lv == JmsValue::Null || rv == JmsValue::Null {
                return Tri::Unknown;
            }
            let res = match (lv.as_f64(), rv.as_f64()) {
                (Some(a), Some(b)) => match *op {
                    "=" => a == b,
                    "<>" => a != b,
                    "<" => a < b,
                    "<=" => a <= b,
                    ">" => a > b,
                    _ => a >= b,
                },
                _ => match (lv.as_str(), rv.as_str()) {
                    (Some(a), Some(b)) => match *op {
                        "=" => a == b,
                        "<>" => a != b,
                        // SQL92 only defines = and <> on strings.
                        _ => return Tri::Unknown,
                    },
                    _ => match (&lv, &rv) {
                        (JmsValue::Bool(a), JmsValue::Bool(b)) => match *op {
                            "=" => a == b,
                            "<>" => a != b,
                            _ => return Tri::Unknown,
                        },
                        _ => return Tri::Unknown,
                    },
                },
            };
            Tri::of(res)
        }
        Node::Between {
            value,
            low,
            high,
            negated,
        } => {
            let v = eval_value(value, m);
            let (lo, hi) = (eval_value(low, m), eval_value(high, m));
            match (v.as_f64(), lo.as_f64(), hi.as_f64()) {
                (Some(x), Some(a), Some(b)) => {
                    let r = x >= a && x <= b;
                    Tri::of(if *negated { !r } else { r })
                }
                _ => Tri::Unknown,
            }
        }
        Node::In {
            value,
            list,
            negated,
        } => match eval_value(value, m) {
            JmsValue::String(s) => {
                let r = list.contains(&s);
                Tri::of(if *negated { !r } else { r })
            }
            JmsValue::Null => Tri::Unknown,
            _ => Tri::False,
        },
        Node::Like {
            value,
            pattern,
            escape,
            negated,
        } => match eval_value(value, m) {
            JmsValue::String(s) => {
                let r = like_match(&s, pattern, *escape);
                Tri::of(if *negated { !r } else { r })
            }
            JmsValue::Null => Tri::Unknown,
            _ => Tri::False,
        },
        Node::IsNull { value, negated } => {
            let is_null = eval_value(value, m) == JmsValue::Null;
            Tri::of(if *negated { !is_null } else { is_null })
        }
        // Arithmetic in boolean position: non-null is not a boolean.
        _ => Tri::Unknown,
    }
}

/// SQL LIKE: `%` = any run, `_` = any one char, with optional escape.
fn like_match(s: &str, pattern: &str, escape: Option<char>) -> bool {
    // Translate to a simple token list, then match recursively.
    #[derive(Debug)]
    enum P {
        Any, // %
        One, // _
        Ch(char),
    }
    let mut toks = Vec::new();
    let mut chars = pattern.chars();
    while let Some(c) = chars.next() {
        if Some(c) == escape {
            if let Some(next) = chars.next() {
                toks.push(P::Ch(next));
            }
        } else if c == '%' {
            toks.push(P::Any);
        } else if c == '_' {
            toks.push(P::One);
        } else {
            toks.push(P::Ch(c));
        }
    }
    fn rec(s: &[char], p: &[P]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(P::Ch(c)) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
            Some(P::One) => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(P::Any) => (0..=s.len()).any(|k| rec(&s[k..], &p[1..])),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    rec(&sc, &toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> JmsMessage {
        JmsMessage::text("payload")
            .with_priority(7)
            .with_type("Alert")
            .with_property("severity", 4i64)
            .with_property("site", "iu-bloomington")
            .with_property("ratio", 0.5)
            .with_property("urgent", true)
    }

    fn m(sel: &str) -> bool {
        Selector::compile(sel)
            .unwrap_or_else(|e| panic!("compile `{sel}`: {e}"))
            .matches(&msg())
    }

    #[test]
    fn comparisons() {
        assert!(m("severity = 4"));
        assert!(m("severity <> 5"));
        assert!(m("severity >= 3 AND severity < 10"));
        assert!(!m("severity > 4"));
        assert!(m("site = 'iu-bloomington'"));
        assert!(m("ratio * 2 = 1"));
        assert!(m("severity + 1 = 5"));
        assert!(m("-severity = -4"));
    }

    #[test]
    fn header_fields() {
        assert!(m("JMSPriority = 7"));
        assert!(m("JMSType = 'Alert'"));
        assert!(m("JMSDeliveryMode = 'PERSISTENT'"));
        assert!(!m("JMSRedelivered"));
    }

    #[test]
    fn boolean_logic() {
        assert!(m("TRUE"));
        assert!(!m("FALSE"));
        assert!(m("urgent"));
        assert!(m("NOT FALSE"));
        assert!(m("severity = 4 OR FALSE"));
        assert!(!m("severity = 4 AND FALSE"));
    }

    #[test]
    fn between() {
        assert!(m("severity BETWEEN 3 AND 5"));
        assert!(!m("severity BETWEEN 5 AND 9"));
        assert!(m("severity NOT BETWEEN 5 AND 9"));
    }

    #[test]
    fn in_list() {
        assert!(m("site IN ('iu-bloomington', 'purdue')"));
        assert!(!m("site IN ('purdue')"));
        assert!(m("site NOT IN ('purdue')"));
    }

    #[test]
    fn like_patterns() {
        assert!(m("site LIKE 'iu%'"));
        assert!(m("site LIKE '%bloomington'"));
        assert!(m("site LIKE 'iu_bloomington'"));
        assert!(!m("site LIKE 'iu'"));
        assert!(m("site NOT LIKE 'purdue%'"));
    }

    #[test]
    fn like_escape() {
        let msg = JmsMessage::text("x").with_property("code", "100%");
        let s = Selector::compile("code LIKE '100!%' ESCAPE '!'").unwrap();
        assert!(s.matches(&msg));
        let s2 = Selector::compile("code LIKE '1__!%' ESCAPE '!'").unwrap();
        assert!(s2.matches(&msg));
    }

    #[test]
    fn null_three_valued_logic() {
        // Comparisons with a missing property are UNKNOWN, not false —
        // and NOT(UNKNOWN) is still UNKNOWN, so neither side matches.
        assert!(!m("missing = 1"));
        assert!(!m("NOT (missing = 1)"));
        assert!(!m("missing <> 1"));
        // But IS NULL sees it.
        assert!(m("missing IS NULL"));
        assert!(!m("missing IS NOT NULL"));
        assert!(m("site IS NOT NULL"));
        // UNKNOWN OR TRUE = TRUE; UNKNOWN AND TRUE = UNKNOWN.
        assert!(m("missing = 1 OR severity = 4"));
        assert!(!m("missing = 1 AND severity = 4"));
    }

    #[test]
    fn string_ordering_is_undefined() {
        assert!(
            !m("site > 'aaa'"),
            "SQL92 defines only = and <> for strings"
        );
    }

    #[test]
    fn sql_escaped_quote() {
        let msg = JmsMessage::text("x").with_property("note", "it's");
        let s = Selector::compile("note = 'it''s'").unwrap();
        assert!(s.matches(&msg));
    }

    #[test]
    fn case_insensitive_keywords() {
        assert!(m("severity between 3 and 5"));
        assert!(m("site like 'iu%'"));
        assert!(m("missing is null"));
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "severity =",
            "severity BETWEEN 1",
            "site IN ('a'",
            "site LIKE",
            "site IS",
            "NOT",
            "(severity = 1",
            "site LIKE 'a' ESCAPE 'ab'",
        ] {
            assert!(Selector::compile(bad).is_err(), "`{bad}` should fail");
        }
    }
}
