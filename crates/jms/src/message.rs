//! JMS messages: five body types, standard headers, typed properties.

/// A JMS property / map / stream value.
#[derive(Debug, Clone, PartialEq)]
pub enum JmsValue {
    /// SQL NULL / absent.
    Null,
    /// `boolean`.
    Bool(bool),
    /// `int` (stands in for byte/short/int).
    Int(i64),
    /// `double` (stands in for float/double).
    Double(f64),
    /// `String`.
    String(String),
}

impl JmsValue {
    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JmsValue::Int(v) => Some(*v as f64),
            JmsValue::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JmsValue::String(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i64> for JmsValue {
    fn from(v: i64) -> Self {
        JmsValue::Int(v)
    }
}
impl From<f64> for JmsValue {
    fn from(v: f64) -> Self {
        JmsValue::Double(v)
    }
}
impl From<&str> for JmsValue {
    fn from(v: &str) -> Self {
        JmsValue::String(v.to_string())
    }
}
impl From<bool> for JmsValue {
    fn from(v: bool) -> Self {
        JmsValue::Bool(v)
    }
}

/// The five JMS message body types (paper §VI.B).
#[derive(Debug, Clone, PartialEq)]
pub enum JmsBody {
    /// `TextMessage`.
    Text(String),
    /// `BytesMessage`.
    Bytes(Vec<u8>),
    /// `MapMessage`.
    Map(Vec<(String, JmsValue)>),
    /// `StreamMessage`.
    Stream(Vec<JmsValue>),
    /// `ObjectMessage` (the serialized form, opaque).
    Object(Vec<u8>),
}

impl JmsBody {
    /// The JMS interface name of this body type.
    pub fn type_name(&self) -> &'static str {
        match self {
            JmsBody::Text(_) => "TextMessage",
            JmsBody::Bytes(_) => "BytesMessage",
            JmsBody::Map(_) => "MapMessage",
            JmsBody::Stream(_) => "StreamMessage",
            JmsBody::Object(_) => "ObjectMessage",
        }
    }
}

/// `JMSDeliveryMode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Message survives provider restarts (simulated flag).
    Persistent,
    /// Best-effort.
    NonPersistent,
}

/// A JMS message: headers + properties + body.
#[derive(Debug, Clone, PartialEq)]
pub struct JmsMessage {
    /// `JMSMessageID` (assigned by the provider on send).
    pub message_id: Option<String>,
    /// `JMSDestination` (assigned on send).
    pub destination: Option<String>,
    /// `JMSTimestamp` (assigned on send, provider virtual clock).
    pub timestamp: u64,
    /// `JMSPriority` 0..=9, default 4.
    pub priority: u8,
    /// `JMSExpiration`: absolute expiry; 0 = never.
    pub expiration: u64,
    /// `JMSDeliveryMode`.
    pub delivery_mode: DeliveryMode,
    /// `JMSCorrelationID`.
    pub correlation_id: Option<String>,
    /// `JMSType`.
    pub jms_type: Option<String>,
    /// `JMSRedelivered`.
    pub redelivered: bool,
    /// Application properties (selector-visible).
    pub properties: Vec<(String, JmsValue)>,
    /// The body.
    pub body: JmsBody,
}

impl JmsMessage {
    /// A text message with defaults.
    pub fn text(s: impl Into<String>) -> Self {
        Self::with_body(JmsBody::Text(s.into()))
    }

    /// A message with the given body and default headers.
    pub fn with_body(body: JmsBody) -> Self {
        JmsMessage {
            message_id: None,
            destination: None,
            timestamp: 0,
            priority: 4,
            expiration: 0,
            delivery_mode: DeliveryMode::Persistent,
            correlation_id: None,
            jms_type: None,
            redelivered: false,
            properties: Vec::new(),
            body,
        }
    }

    /// Builder-style property.
    pub fn with_property(mut self, name: &str, value: impl Into<JmsValue>) -> Self {
        self.properties.push((name.to_string(), value.into()));
        self
    }

    /// Builder-style priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority.min(9);
        self
    }

    /// Builder-style JMSType.
    pub fn with_type(mut self, t: impl Into<String>) -> Self {
        self.jms_type = Some(t.into());
        self
    }

    /// Builder-style absolute expiration.
    pub fn with_expiration(mut self, at: u64) -> Self {
        self.expiration = at;
        self
    }

    /// Builder-style delivery mode.
    pub fn with_delivery_mode(mut self, mode: DeliveryMode) -> Self {
        self.delivery_mode = mode;
        self
    }

    /// Selector identifier resolution: header fields by their `JMS*`
    /// names, then application properties.
    pub fn resolve(&self, identifier: &str) -> JmsValue {
        match identifier {
            "JMSPriority" => JmsValue::Int(self.priority as i64),
            "JMSTimestamp" => JmsValue::Int(self.timestamp as i64),
            "JMSExpiration" => JmsValue::Int(self.expiration as i64),
            "JMSDeliveryMode" => JmsValue::String(
                match self.delivery_mode {
                    DeliveryMode::Persistent => "PERSISTENT",
                    DeliveryMode::NonPersistent => "NON_PERSISTENT",
                }
                .to_string(),
            ),
            "JMSMessageID" => self
                .message_id
                .clone()
                .map(JmsValue::String)
                .unwrap_or(JmsValue::Null),
            "JMSCorrelationID" => self
                .correlation_id
                .clone()
                .map(JmsValue::String)
                .unwrap_or(JmsValue::Null),
            "JMSType" => self
                .jms_type
                .clone()
                .map(JmsValue::String)
                .unwrap_or(JmsValue::Null),
            "JMSRedelivered" => JmsValue::Bool(self.redelivered),
            _ => self
                .properties
                .iter()
                .find(|(n, _)| n == identifier)
                .map(|(_, v)| v.clone())
                .unwrap_or(JmsValue::Null),
        }
    }

    /// Has the message expired at `now`?
    pub fn expired(&self, now: u64) -> bool {
        self.expiration != 0 && self.expiration <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_body_types() {
        assert_eq!(JmsMessage::text("x").body.type_name(), "TextMessage");
        assert_eq!(JmsBody::Bytes(vec![1]).type_name(), "BytesMessage");
        assert_eq!(JmsBody::Map(vec![]).type_name(), "MapMessage");
        assert_eq!(JmsBody::Stream(vec![]).type_name(), "StreamMessage");
        assert_eq!(JmsBody::Object(vec![]).type_name(), "ObjectMessage");
    }

    #[test]
    fn resolve_headers_and_properties() {
        let m = JmsMessage::text("x")
            .with_priority(7)
            .with_type("Alert")
            .with_property("severity", 4i64)
            .with_property("site", "iu");
        assert_eq!(m.resolve("JMSPriority"), JmsValue::Int(7));
        assert_eq!(m.resolve("JMSType"), JmsValue::String("Alert".into()));
        assert_eq!(m.resolve("severity"), JmsValue::Int(4));
        assert_eq!(m.resolve("site"), JmsValue::String("iu".into()));
        assert_eq!(m.resolve("missing"), JmsValue::Null);
        assert_eq!(m.resolve("JMSCorrelationID"), JmsValue::Null);
    }

    #[test]
    fn priority_clamped() {
        assert_eq!(JmsMessage::text("x").with_priority(42).priority, 9);
    }

    #[test]
    fn expiration() {
        let m = JmsMessage::text("x").with_expiration(100);
        assert!(!m.expired(99));
        assert!(m.expired(100));
        assert!(!JmsMessage::text("x").expired(u64::MAX), "0 = never");
    }
}
