//! Message-addressing properties as SOAP headers.

use crate::epr::EndpointReference;
use crate::WsaVersion;
use wsm_soap::Envelope;
use wsm_xml::Element;

/// The WS-Addressing message-addressing properties (MAPs) of one
/// message: `To`, `Action`, `MessageID`, `RelatesTo`, `ReplyTo`,
/// `FaultTo`, plus any reference data echoed to the target EPR.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MessageHeaders {
    /// Destination URI (`wsa:To`).
    pub to: Option<String>,
    /// Action URI (`wsa:Action`) — the per-operation values are one of
    /// the §V.4 "message contents" differences between the spec families.
    pub action: Option<String>,
    /// Unique id (`wsa:MessageID`).
    pub message_id: Option<String>,
    /// Correlation (`wsa:RelatesTo`).
    pub relates_to: Option<String>,
    /// Where to send the reply.
    pub reply_to: Option<EndpointReference>,
    /// Where to send faults.
    pub fault_to: Option<EndpointReference>,
    /// Reference properties/parameters of the destination EPR, echoed
    /// as top-level headers per the WSA binding rules.
    pub echoed_reference_data: Vec<Element>,
}

impl MessageHeaders {
    /// Headers for a request to `to` with the given action.
    pub fn request(to: impl Into<String>, action: impl Into<String>) -> Self {
        MessageHeaders {
            to: Some(to.into()),
            action: Some(action.into()),
            ..Default::default()
        }
    }

    /// Headers addressed at a full EPR: destination address plus echoed
    /// reference data (this is how `Renew`/`Unsubscribe` reach the right
    /// subscription in both spec families).
    pub fn to_epr(epr: &EndpointReference, action: impl Into<String>) -> Self {
        MessageHeaders {
            to: Some(epr.address.clone()),
            action: Some(action.into()),
            echoed_reference_data: epr.all_reference_data().cloned().collect(),
            ..Default::default()
        }
    }

    /// Builder-style message id.
    pub fn with_message_id(mut self, id: impl Into<String>) -> Self {
        self.message_id = Some(id.into());
        self
    }

    /// Builder-style reply-to.
    pub fn with_reply_to(mut self, epr: EndpointReference) -> Self {
        self.reply_to = Some(epr);
        self
    }

    /// Builder-style relates-to.
    pub fn with_relates_to(mut self, id: impl Into<String>) -> Self {
        self.relates_to = Some(id.into());
        self
    }

    /// Attach these MAPs to an envelope in the given WSA version.
    pub fn apply(&self, env: &mut Envelope, version: WsaVersion) {
        let ns = version.ns();
        let text_header = |name: &str, value: &str| Element::ns(ns, name, "wsa").with_text(value);
        if let Some(to) = &self.to {
            env.add_header(text_header("To", to));
        }
        if let Some(action) = &self.action {
            env.add_header(text_header("Action", action));
        }
        if let Some(id) = &self.message_id {
            env.add_header(text_header("MessageID", id));
        }
        if let Some(rel) = &self.relates_to {
            env.add_header(text_header("RelatesTo", rel));
        }
        if let Some(epr) = &self.reply_to {
            env.add_header(epr.to_named_element(version, Element::ns(ns, "ReplyTo", "wsa")));
        }
        if let Some(epr) = &self.fault_to {
            env.add_header(epr.to_named_element(version, Element::ns(ns, "FaultTo", "wsa")));
        }
        for item in &self.echoed_reference_data {
            env.add_header(item.clone());
        }
    }

    /// Extract the MAPs present in an envelope for a given WSA version.
    ///
    /// Headers that are not WSA headers of this version are collected as
    /// echoed reference data, which is where subscription identifiers
    /// surface on the subscription-manager side.
    pub fn extract(env: &Envelope, version: WsaVersion) -> Self {
        let ns = version.ns();
        let mut maps = MessageHeaders::default();
        for h in env.headers() {
            if h.name.ns.as_deref() == Some(ns) {
                match h.name.local.as_str() {
                    "To" => maps.to = Some(h.text().trim().to_string()),
                    "Action" => maps.action = Some(h.text().trim().to_string()),
                    "MessageID" => maps.message_id = Some(h.text().trim().to_string()),
                    "RelatesTo" => maps.relates_to = Some(h.text().trim().to_string()),
                    "ReplyTo" => maps.reply_to = EndpointReference::from_element(h, version),
                    "FaultTo" => maps.fault_to = EndpointReference::from_element(h, version),
                    _ => maps.echoed_reference_data.push(h.clone()),
                }
            } else if !is_soap_or_wsa_header(h) {
                maps.echoed_reference_data.push(h.clone());
            }
        }
        maps
    }

    /// Detect which WSA version an envelope's headers use, by the
    /// namespace of its `Action` (or `To`) header.
    pub fn detect_version(env: &Envelope) -> Option<WsaVersion> {
        for h in env.headers() {
            if matches!(h.name.local.as_str(), "Action" | "To" | "MessageID") {
                if let Some(ns) = h.name.ns.as_deref() {
                    if let Some(v) = WsaVersion::from_ns(ns) {
                        return Some(v);
                    }
                }
            }
        }
        None
    }
}

fn is_soap_or_wsa_header(h: &Element) -> bool {
    h.name
        .ns
        .as_deref()
        .is_some_and(|ns| ns.contains("soap") || WsaVersion::from_ns(ns).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsm_soap::SoapVersion;

    fn roundtrip(version: WsaVersion) {
        let maps = MessageHeaders::request("http://svc", "urn:op")
            .with_message_id("uuid:1")
            .with_relates_to("uuid:0")
            .with_reply_to(EndpointReference::new("http://me"));
        let mut env = Envelope::new(SoapVersion::V12).with_body(Element::local("x"));
        maps.apply(&mut env, version);
        let env2 = Envelope::from_xml(&env.to_xml()).unwrap();
        let back = MessageHeaders::extract(&env2, version);
        assert_eq!(back, maps);
        assert_eq!(MessageHeaders::detect_version(&env2), Some(version));
    }

    #[test]
    fn roundtrip_all_versions() {
        roundtrip(WsaVersion::V200303);
        roundtrip(WsaVersion::V200408);
        roundtrip(WsaVersion::V200508);
    }

    #[test]
    fn epr_reference_data_echoed_as_headers() {
        let epr = EndpointReference::new("http://mgr").with_reference(
            WsaVersion::V200408,
            Element::ns("urn:wse", "Identifier", "wse").with_text("sub-9"),
        );
        let maps = MessageHeaders::to_epr(&epr, "urn:renew");
        let mut env = Envelope::new(SoapVersion::V12).with_body(Element::local("Renew"));
        maps.apply(&mut env, WsaVersion::V200408);
        let env2 = Envelope::from_xml(&env.to_xml()).unwrap();
        // The manager finds its identifier among the headers.
        let found = env2
            .headers()
            .iter()
            .find(|h| h.name.is("urn:wse", "Identifier"))
            .expect("identifier echoed");
        assert_eq!(found.text(), "sub-9");
        let back = MessageHeaders::extract(&env2, WsaVersion::V200408);
        assert_eq!(back.echoed_reference_data.len(), 1);
    }

    #[test]
    fn wrong_version_extracts_nothing() {
        let maps = MessageHeaders::request("http://svc", "urn:op");
        let mut env = Envelope::new(SoapVersion::V12).with_body(Element::local("x"));
        maps.apply(&mut env, WsaVersion::V200408);
        let back = MessageHeaders::extract(&env, WsaVersion::V200508);
        assert_eq!(back.to, None);
        assert_eq!(back.action, None);
    }

    #[test]
    fn detect_version_none_without_wsa() {
        let env = Envelope::new(SoapVersion::V12).with_body(Element::local("x"));
        assert_eq!(MessageHeaders::detect_version(&env), None);
    }
}
