//! Endpoint references.

use crate::WsaVersion;
use wsm_xml::Element;

/// A WS-Addressing endpoint reference.
///
/// The same logical EPR serializes differently per WSA version; in
/// particular the container for reference data is `ReferenceProperties`
/// (2003/03), either container (2004/08) or `ReferenceParameters` +
/// `Metadata` (2005/08). Subscription managers in both spec families
/// identify subscriptions by stuffing an identifier element into this
/// container — the paper's §V.4 category-1 example.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EndpointReference {
    /// The `wsa:Address` URI.
    pub address: String,
    /// Content of `wsa:ReferenceProperties` (2003/03, 2004/08).
    pub reference_properties: Vec<Element>,
    /// Content of `wsa:ReferenceParameters` (2004/08, 2005/08).
    pub reference_parameters: Vec<Element>,
    /// Content of `wsa:Metadata` (2005/08 only).
    pub metadata: Vec<Element>,
}

impl EndpointReference {
    /// An EPR with just an address.
    pub fn new(address: impl Into<String>) -> Self {
        EndpointReference {
            address: address.into(),
            ..Default::default()
        }
    }

    /// The anonymous EPR for a WSA version.
    pub fn anonymous(version: WsaVersion) -> Self {
        EndpointReference::new(version.anonymous())
    }

    /// Attach a reference property/parameter in the container
    /// appropriate for `version` (properties before 2005/08 when asked,
    /// parameters otherwise). This is how subscription identifiers get
    /// planted.
    pub fn with_reference(mut self, version: WsaVersion, item: Element) -> Self {
        if version == WsaVersion::V200303 {
            self.reference_properties.push(item);
        } else {
            self.reference_parameters.push(item);
        }
        self
    }

    /// All reference data regardless of container — what a client echoes
    /// back as SOAP headers when sending to this EPR.
    pub fn all_reference_data(&self) -> impl Iterator<Item = &Element> {
        self.reference_properties
            .iter()
            .chain(self.reference_parameters.iter())
    }

    /// Find a reference item by expanded name in either container.
    pub fn reference_item(&self, ns: &str, local: &str) -> Option<&Element> {
        self.all_reference_data().find(|e| e.name.is(ns, local))
    }

    /// Serialize into an element named `wsa:EndpointReference`.
    pub fn to_element(&self, version: WsaVersion) -> Element {
        self.to_named_element(
            version,
            Element::ns(version.ns(), "EndpointReference", "wsa"),
        )
    }

    /// Serialize into a caller-supplied shell element (the specs wrap
    /// EPRs in role-specific names: `wse:NotifyTo`, `wsnt:ConsumerReference`,
    /// `wse:SubscriptionManager`...).
    pub fn to_named_element(&self, version: WsaVersion, mut shell: Element) -> Element {
        let ns = version.ns();
        shell.push(Element::ns(ns, "Address", "wsa").with_text(self.address.clone()));
        if !self.reference_properties.is_empty() && version.has_reference_properties() {
            let mut c = Element::ns(ns, "ReferenceProperties", "wsa");
            for e in &self.reference_properties {
                c.push(e.clone());
            }
            shell.push(c);
        }
        if !self.reference_parameters.is_empty() && version.has_reference_parameters() {
            let mut c = Element::ns(ns, "ReferenceParameters", "wsa");
            for e in &self.reference_parameters {
                c.push(e.clone());
            }
            shell.push(c);
        }
        if !self.metadata.is_empty() && version == WsaVersion::V200508 {
            let mut c = Element::ns(ns, "Metadata", "wsa");
            for e in &self.metadata {
                c.push(e.clone());
            }
            shell.push(c);
        }
        shell
    }

    /// Parse an EPR from an element (the element itself is the shell).
    /// Returns `None` when no `Address` child in the given version's
    /// namespace is present.
    pub fn from_element(el: &Element, version: WsaVersion) -> Option<Self> {
        let ns = version.ns();
        let address = el.child_ns(ns, "Address")?.text().trim().to_string();
        let collect = |name: &str| -> Vec<Element> {
            el.child_ns(ns, name)
                .map(|c| c.elements().cloned().collect())
                .unwrap_or_default()
        };
        Some(EndpointReference {
            address,
            reference_properties: collect("ReferenceProperties"),
            reference_parameters: collect("ReferenceParameters"),
            metadata: collect("Metadata"),
        })
    }

    /// Parse detecting the version from the `Address` child namespace.
    pub fn from_element_any_version(el: &Element) -> Option<(Self, WsaVersion)> {
        for v in [
            WsaVersion::V200508,
            WsaVersion::V200408,
            WsaVersion::V200303,
        ] {
            if let Some(epr) = Self::from_element(el, v) {
                return Some((epr, v));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsm_xml::to_string;

    #[test]
    fn roundtrip_all_versions() {
        for v in [
            WsaVersion::V200303,
            WsaVersion::V200408,
            WsaVersion::V200508,
        ] {
            let epr = EndpointReference::new("http://consumer.example.org/sink")
                .with_reference(v, Element::ns("urn:sub", "Id", "sub").with_text("s-1"));
            let el = epr.to_element(v);
            let back = EndpointReference::from_element(&el, v).unwrap();
            assert_eq!(back, epr, "{}", to_string(&el));
        }
    }

    #[test]
    fn container_differs_by_version() {
        let id = Element::ns("urn:sub", "Id", "sub").with_text("s-1");
        let old =
            EndpointReference::new("http://x").with_reference(WsaVersion::V200303, id.clone());
        assert_eq!(old.reference_properties.len(), 1);
        assert!(old.reference_parameters.is_empty());
        let new = EndpointReference::new("http://x").with_reference(WsaVersion::V200508, id);
        assert!(new.reference_properties.is_empty());
        assert_eq!(new.reference_parameters.len(), 1);
    }

    #[test]
    fn serialization_omits_wrong_containers() {
        let mut epr = EndpointReference::new("http://x");
        epr.reference_properties.push(Element::local("p"));
        epr.reference_parameters.push(Element::local("q"));
        epr.metadata.push(Element::local("m"));
        let s303 = to_string(&epr.to_element(WsaVersion::V200303));
        assert!(s303.contains("ReferenceProperties"), "{s303}");
        assert!(!s303.contains("ReferenceParameters"), "{s303}");
        assert!(!s303.contains("Metadata"), "{s303}");
        let s508 = to_string(&epr.to_element(WsaVersion::V200508));
        assert!(!s508.contains("ReferenceProperties"), "{s508}");
        assert!(s508.contains("ReferenceParameters"), "{s508}");
        assert!(s508.contains("Metadata"), "{s508}");
    }

    #[test]
    fn reference_item_lookup_spans_containers() {
        let mut epr = EndpointReference::new("http://x");
        epr.reference_properties
            .push(Element::ns("urn:a", "P", "a").with_text("1"));
        epr.reference_parameters
            .push(Element::ns("urn:a", "Q", "a").with_text("2"));
        assert_eq!(epr.reference_item("urn:a", "P").unwrap().text(), "1");
        assert_eq!(epr.reference_item("urn:a", "Q").unwrap().text(), "2");
        assert!(epr.reference_item("urn:a", "R").is_none());
    }

    #[test]
    fn named_shell() {
        let epr = EndpointReference::new("http://sink");
        let el = epr.to_named_element(
            WsaVersion::V200408,
            Element::ns("urn:wse", "NotifyTo", "wse"),
        );
        assert_eq!(el.name.local, "NotifyTo");
        assert_eq!(
            el.child_ns(WsaVersion::V200408.ns(), "Address")
                .unwrap()
                .text(),
            "http://sink"
        );
    }

    #[test]
    fn version_detection_from_content() {
        let epr = EndpointReference::new("http://x");
        for v in [
            WsaVersion::V200303,
            WsaVersion::V200408,
            WsaVersion::V200508,
        ] {
            let el = epr.to_element(v);
            let (_, got) = EndpointReference::from_element_any_version(&el).unwrap();
            assert_eq!(got, v);
        }
    }

    #[test]
    fn missing_address_is_none() {
        let el = Element::local("Shell");
        assert!(EndpointReference::from_element(&el, WsaVersion::V200508).is_none());
    }

    #[test]
    fn anonymous_eprs() {
        let a = EndpointReference::anonymous(WsaVersion::V200508);
        assert_eq!(a.address, "http://www.w3.org/2005/08/addressing/anonymous");
    }
}
