#![warn(missing_docs)]
//! # wsm-addressing — WS-Addressing, all three relevant versions
//!
//! The specifications the paper compares bind to *different* versions of
//! WS-Addressing, and the paper calls this out twice: Table 1's last row
//! records the WSA version of each spec release, and §V.4 lists "versions
//! difference of underlying specifications" as a whole category of
//! message-format incompatibility. Reproducing that requires actually
//! having the three versions:
//!
//! | WSA version | namespace | used by |
//! |---|---|---|
//! | 2003/03 | `http://schemas.xmlsoap.org/ws/2003/03/addressing` | WS-Eventing 01/2004, WS-Notification 1.0 |
//! | 2004/08 | `http://schemas.xmlsoap.org/ws/2004/08/addressing` | WS-Eventing 08/2004 |
//! | 2005/08 | `http://www.w3.org/2005/08/addressing` (W3C) | WS-Notification 1.3 |
//!
//! The versions also differ structurally: 2003/03 EPRs carry
//! `ReferenceProperties`, 2004/08 carries both `ReferenceProperties` and
//! `ReferenceParameters`, and 2005/08 has only `ReferenceParameters`
//! plus `Metadata` — which is exactly the `subscriptionId` enclosing
//! element difference the paper highlights (§V.4 category 1).

pub mod epr;
pub mod headers;

pub use epr::EndpointReference;
pub use headers::MessageHeaders;

/// The WS-Addressing specification versions in play.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WsaVersion {
    /// March 2003 submission.
    V200303,
    /// August 2004 submission.
    V200408,
    /// August 2005 W3C Recommendation.
    V200508,
}

impl WsaVersion {
    /// The namespace URI of this version.
    pub fn ns(self) -> &'static str {
        match self {
            WsaVersion::V200303 => "http://schemas.xmlsoap.org/ws/2003/03/addressing",
            WsaVersion::V200408 => "http://schemas.xmlsoap.org/ws/2004/08/addressing",
            WsaVersion::V200508 => "http://www.w3.org/2005/08/addressing",
        }
    }

    /// The anonymous address: "reply on the same connection".
    pub fn anonymous(self) -> &'static str {
        match self {
            WsaVersion::V200303 => {
                "http://schemas.xmlsoap.org/ws/2003/03/addressing/role/anonymous"
            }
            WsaVersion::V200408 => {
                "http://schemas.xmlsoap.org/ws/2004/08/addressing/role/anonymous"
            }
            WsaVersion::V200508 => "http://www.w3.org/2005/08/addressing/anonymous",
        }
    }

    /// Whether EPRs in this version carry a `ReferenceProperties` child.
    pub fn has_reference_properties(self) -> bool {
        !matches!(self, WsaVersion::V200508)
    }

    /// Whether EPRs in this version carry a `ReferenceParameters` child.
    pub fn has_reference_parameters(self) -> bool {
        !matches!(self, WsaVersion::V200303)
    }

    /// Short label used in tables (matches the paper's "2003/03" style).
    pub fn label(self) -> &'static str {
        match self {
            WsaVersion::V200303 => "2003/03",
            WsaVersion::V200408 => "2004/08",
            WsaVersion::V200508 => "2005/08",
        }
    }

    /// Detect the version from a namespace URI.
    pub fn from_ns(ns: &str) -> Option<Self> {
        [
            WsaVersion::V200303,
            WsaVersion::V200408,
            WsaVersion::V200508,
        ]
        .into_iter()
        .find(|v| v.ns() == ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_distinct() {
        let all = [
            WsaVersion::V200303,
            WsaVersion::V200408,
            WsaVersion::V200508,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.ns(), b.ns());
                assert_ne!(a.anonymous(), b.anonymous());
            }
        }
    }

    #[test]
    fn structural_capabilities_match_the_specs() {
        assert!(WsaVersion::V200303.has_reference_properties());
        assert!(!WsaVersion::V200303.has_reference_parameters());
        assert!(WsaVersion::V200408.has_reference_properties());
        assert!(WsaVersion::V200408.has_reference_parameters());
        assert!(!WsaVersion::V200508.has_reference_properties());
        assert!(WsaVersion::V200508.has_reference_parameters());
    }

    #[test]
    fn detection() {
        for v in [
            WsaVersion::V200303,
            WsaVersion::V200408,
            WsaVersion::V200508,
        ] {
            assert_eq!(WsaVersion::from_ns(v.ns()), Some(v));
        }
        assert_eq!(WsaVersion::from_ns("urn:other"), None);
    }

    #[test]
    fn labels_match_paper_table_style() {
        assert_eq!(WsaVersion::V200303.label(), "2003/03");
        assert_eq!(WsaVersion::V200508.label(), "2005/08");
    }
}
