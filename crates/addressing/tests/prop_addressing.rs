//! Property tests: EPRs and message-addressing headers round-trip in
//! every WS-Addressing version.

use proptest::prelude::*;
use wsm_addressing::{EndpointReference, MessageHeaders, WsaVersion};
use wsm_soap::{Envelope, SoapVersion};
use wsm_xml::Element;

fn version_strategy() -> impl Strategy<Value = WsaVersion> {
    prop_oneof![
        Just(WsaVersion::V200303),
        Just(WsaVersion::V200408),
        Just(WsaVersion::V200508),
    ]
}

fn uri_strategy() -> impl Strategy<Value = String> {
    "[a-z]{2,8}".prop_map(|host| format!("http://{host}.example.org/svc"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// EPR → element → EPR is the identity, per version, with reference
    /// data in the version-appropriate container.
    #[test]
    fn epr_roundtrip(
        version in version_strategy(),
        address in uri_strategy(),
        ids in prop::collection::vec(("[A-Za-z]{1,10}", "[a-z0-9-]{1,12}"), 0..3),
    ) {
        let mut epr = EndpointReference::new(address);
        for (name, value) in ids {
            epr = epr.with_reference(
                version,
                Element::ns("urn:ids", name, "ids").with_text(value),
            );
        }
        let el = epr.to_element(version);
        let xml = wsm_xml::to_string(&el);
        let reparsed = wsm_xml::parse(&xml).unwrap();
        let back = EndpointReference::from_element(&reparsed, version).unwrap();
        prop_assert_eq!(back, epr, "{}", xml);
    }

    /// MAPs applied to an envelope extract to the same MAPs, and the
    /// detected version matches.
    #[test]
    fn maps_roundtrip(
        version in version_strategy(),
        to in uri_strategy(),
        action in "[a-z:/.]{1,30}",
        msg_id in proptest::option::of("[a-f0-9-]{8,16}"),
    ) {
        let mut maps = MessageHeaders::request(to, action);
        if let Some(id) = msg_id {
            maps = maps.with_message_id(format!("uuid:{id}"));
        }
        let mut env = Envelope::new(SoapVersion::V11).with_body(Element::local("op"));
        maps.apply(&mut env, version);
        let reparsed = Envelope::from_xml(&env.to_xml()).unwrap();
        prop_assert_eq!(MessageHeaders::detect_version(&reparsed), Some(version));
        let back = MessageHeaders::extract(&reparsed, version);
        prop_assert_eq!(back, maps);
    }

    /// Reference data echoed to a target EPR always comes back as
    /// headers, whatever the container it rode in.
    #[test]
    fn reference_data_echo(version in version_strategy(), value in "[a-z0-9-]{1,16}") {
        let epr = EndpointReference::new("http://mgr").with_reference(
            version,
            Element::ns("urn:ids", "Token", "ids").with_text(value.clone()),
        );
        let maps = MessageHeaders::to_epr(&epr, "urn:act");
        let mut env = Envelope::new(SoapVersion::V11).with_body(Element::local("op"));
        maps.apply(&mut env, version);
        let reparsed = Envelope::from_xml(&env.to_xml()).unwrap();
        let token = reparsed
            .headers()
            .iter()
            .find(|h| h.name.is("urn:ids", "Token"))
            .expect("echoed token header");
        prop_assert_eq!(token.text(), value);
    }
}
