//! The mediation bridge — the paper's §VII headline scenario, with the
//! actual SOAP messages printed so you can see the two dialects.
//!
//! "An event producer can publish event notifications using either the
//! WS-Eventing specification or the WS-Notification specification. It
//! makes no difference to the event consumers since WS-Messenger
//! performs mediations automatically."
//!
//! Run with `cargo run --example mediation_bridge`.

use std::sync::Arc;
use ws_messenger_suite::addressing::EndpointReference;
use ws_messenger_suite::eventing::{EventSink, SubscribeRequest, Subscriber, WseVersion};
use ws_messenger_suite::jms::JmsProvider;
use ws_messenger_suite::messenger::{JmsBackend, WsMessenger};
use ws_messenger_suite::notification::{
    NotificationConsumer, NotificationMessage, WsnClient, WsnCodec, WsnSubscribeRequest, WsnVersion,
};
use ws_messenger_suite::transport::Network;
use ws_messenger_suite::xml::{to_pretty_string, Element};

fn main() {
    let net = Network::new();
    // Wrap a JMS provider as the underlying pub/sub system — the
    // paper's "Web service interfaces to existing messaging systems".
    let jms = JmsProvider::new();
    let broker = WsMessenger::start_with_backend(
        &net,
        "http://broker/events",
        Arc::new(JmsBackend::new(jms.clone(), "wsm.relay")),
    );
    println!("broker backend: {}\n", broker.backend_name());

    // A WS-Eventing consumer and a WS-Notification consumer.
    let wse_sink = EventSink::start(&net, "http://c1/wse", WseVersion::Aug2004);
    Subscriber::new(&net, WseVersion::Aug2004)
        .subscribe(broker.uri(), SubscribeRequest::push(wse_sink.epr()))
        .unwrap();
    let wsn_consumer = NotificationConsumer::start(&net, "http://c2/wsn", WsnVersion::V1_3);
    WsnClient::new(&net, WsnVersion::V1_3)
        .subscribe(broker.uri(), &WsnSubscribeRequest::new(wsn_consumer.epr()))
        .unwrap();

    // Direction 1: a WS-Notification publisher posts a wrapped Notify.
    let codec = WsnCodec::new(WsnVersion::V1_3);
    let incoming = codec.notify(
        &EndpointReference::new(broker.uri()),
        &[NotificationMessage {
            topic: ws_messenger_suite::topics::TopicPath::parse("weather/storms"),
            producer: Some(EndpointReference::new("http://publisher/wsn")),
            subscription: None,
            message: Element::ns("urn:wx", "alert", "wx")
                .with_attr("sev", "4")
                .with_text("tornado warning"),
        }],
    );
    println!("--- WSN publisher sends to the broker (SOAP 1.1, Notify wrapper): ---");
    println!("{}\n", to_pretty_string(&incoming.to_element()));
    net.send(broker.uri(), incoming).unwrap();

    // What the WSE consumer got: a raw-body SOAP 1.2 message.
    println!("--- what the WS-Eventing consumer received (raw body): ---");
    let got = &wse_sink.received()[0];
    println!("{}\n", to_pretty_string(got));
    assert_eq!(got.text(), "tornado warning");

    // Direction 2: a WS-Eventing-style producer posts the bare payload.
    let raw = ws_messenger_suite::soap::Envelope::new(ws_messenger_suite::soap::SoapVersion::V12)
        .with_body(Element::ns("urn:wx", "allclear", "wx").with_text("storm passed"));
    println!("--- WSE-style publisher posts a bare payload: ---");
    println!("{}\n", to_pretty_string(&raw.to_element()));
    net.send(broker.uri(), raw).unwrap();

    // What the WSN consumer got: a wrapped Notify with producer ref.
    let msgs = wsn_consumer.notifications();
    println!(
        "--- the WS-Notification consumer received {} Notify message(s); last payload: `{}` from {} ---",
        msgs.len(),
        msgs.last().unwrap().message.text(),
        msgs.last().unwrap().producer.as_ref().unwrap().address,
    );
    assert_eq!(msgs.len(), 2);

    let stats = broker.stats();
    println!(
        "\nmediation stats: published={} wse-deliveries={} wsn-deliveries={} mediated={}",
        stats.published, stats.delivered_wse, stats.delivered_wsn, stats.mediated
    );
    assert!(stats.mediated >= 1);
    println!("ok");
}
