//! Watching the broker work: the observability layer end to end.
//!
//! A mixed WS-Eventing / WS-Notification population subscribes to a
//! broker, a publisher pushes a burst of events through it, and then
//! the instrumentation answers three questions:
//!
//! 1. **Where does a publication's time go?** Per-stage latency
//!    histograms (detect → match → render → deliver) with p50/p95/p99.
//! 2. **What exactly happened?** The bounded span ring replays the
//!    pipeline stages of each publication, and the transport trace
//!    attributes every delivery attempt to the worker thread that made
//!    it.
//! 3. **How do I scrape it?** The same data is exposed as
//!    Prometheus-style text and over SOAP (`GetMetrics` / `GetTrace`
//!    in the broker's extension namespace), so a monitoring agent
//!    needs nothing but a SOAP client.
//!
//! Run with `cargo run --example observability`.

use ws_messenger_suite::eventing::{EventSink, SubscribeRequest, Subscriber, WseVersion};
use ws_messenger_suite::messenger::WsMessenger;
use ws_messenger_suite::notification::{
    NotificationConsumer, WsnClient, WsnFilter, WsnSubscribeRequest, WsnVersion,
};
use ws_messenger_suite::soap::{Envelope, SoapVersion};
use ws_messenger_suite::transport::Network;
use ws_messenger_suite::xml::Element;

fn main() {
    let net = Network::new();
    let broker = WsMessenger::start(&net, "http://broker");
    broker.set_fanout_workers(4);

    // Eight consumers, half per specification family, so every
    // publication exercises the mediation path.
    let wse = Subscriber::new(&net, WseVersion::Aug2004);
    let wsn = WsnClient::new(&net, WsnVersion::V1_3);
    for i in 0..8 {
        if i % 2 == 0 {
            let sink = EventSink::start(&net, &format!("http://sink-{i}"), WseVersion::Aug2004);
            wse.subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
                .unwrap();
        } else {
            let c = NotificationConsumer::start(&net, &format!("http://nc-{i}"), WsnVersion::V1_3);
            wsn.subscribe(
                broker.uri(),
                &WsnSubscribeRequest::new(c.epr()).with_filter(WsnFilter::topic("storms")),
            )
            .unwrap();
        }
    }

    net.drain_trace();
    for i in 0..50 {
        broker.publish_on(
            "storms",
            &Element::local("reading").with_attr("n", i.to_string()),
        );
    }

    // 1. Per-stage latency: where a publication's time goes.
    let snap = broker.obs_snapshot();
    println!("pipeline stages over {} publications:", snap.published);
    println!(
        "  {:<10} {:>6} {:>10} {:>10} {:>10}",
        "stage", "count", "p50 µs", "p95 µs", "p99 µs"
    );
    for (name, stats) in &snap.stages {
        if stats.count == 0 {
            continue;
        }
        println!(
            "  {:<10} {:>6} {:>10.2} {:>10.2} {:>10.2}",
            name,
            stats.count,
            stats.p50 / 1000.0,
            stats.p95 / 1000.0,
            stats.p99 / 1000.0
        );
    }
    println!(
        "per-subscriber send latency: p50 {:.2}µs, p99 {:.2}µs over {} sends\n",
        snap.delivery_latency.p50 / 1000.0,
        snap.delivery_latency.p99 / 1000.0,
        snap.delivery_latency.count
    );

    // 2a. The span ring replays one publication's pipeline.
    let spans = broker.trace_spans();
    let last_seq = spans.last().unwrap().seq;
    println!("trace of publication #{last_seq}:");
    for s in spans.iter().filter(|s| s.seq == last_seq) {
        println!(
            "  t={}ms {:<8} {:>8}ns  ({} item{})",
            s.at_ms,
            s.stage.name(),
            s.dur_ns,
            s.items,
            if s.items == 1 { "" } else { "s" }
        );
    }

    // 2b. The transport trace attributes deliveries to pool workers.
    let trace = net.drain_trace();
    let workers: std::collections::BTreeSet<_> = trace.iter().map(|r| r.worker.clone()).collect();
    println!(
        "\n{} deliveries made by workers: {workers:?}\n",
        trace.len()
    );

    // 3. Scraping: Prometheus text locally, or GetMetrics over SOAP.
    let metrics = broker.metrics_text();
    for line in metrics
        .lines()
        .filter(|l| l.starts_with("wsm_") && !l.contains("_bucket"))
    {
        println!("{line}");
    }
    let resp = net
        .request(
            "http://broker",
            Envelope::new(SoapVersion::V11).with_body(Element::ns(
                ws_messenger_suite::messenger::render::WSM_NS,
                "GetTrace",
                "wsm",
            )),
        )
        .unwrap();
    println!(
        "\nGetTrace over SOAP returned {} spans",
        resp.body().unwrap().elements().count()
    );
}
