//! Watching the broker work: causal timelines, SLO verdicts, exports.
//!
//! A fault-tolerant broker feeds a mixed population — healthy
//! consumers plus one that swallows every delivery — and the
//! observability layer answers four questions:
//!
//! 1. **Where does a publication's time go?** Per-stage latency
//!    histograms (publish → match → render → deliver, plus the
//!    retry/dead-letter stages) with p50/p95/p99.
//! 2. **What happened to THIS event?** The span ring is causal, not
//!    just flat: every (event, subscriber) pair reconstructs into a
//!    [`DeliveryStory`] — first attempt, each backed-off retry, the
//!    dead-letter move, and a terminal outcome with true end-to-end
//!    latency (publish → resolution, not publish → first send).
//! 3. **Is the service *good*?** Declarative SLOs judge the terminal
//!    outcomes: a latency target at a quantile, an error budget over a
//!    rolling window, and a burn rate that says how fast the budget is
//!    going.
//! 4. **How do I scrape it?** Prometheus text and SOAP (`GetMetrics`
//!    / `GetTrace` in the broker's extension namespace) carry the
//!    same data, span-loss gauge and SLO verdicts included.
//!
//! Run with `cargo run --example observability`.

use ws_messenger_suite::eventing::{EventSink, SubscribeRequest, Subscriber, WseVersion};
use ws_messenger_suite::messenger::{FaultTolerance, Outcome, SloSpec, WsMessenger};
use ws_messenger_suite::soap::{Envelope, SoapVersion};
use ws_messenger_suite::transport::{EndpointFaults, FaultPlan, Network};
use ws_messenger_suite::xml::Element;

fn main() {
    let net = Network::new();
    net.set_latency_ms(5);
    let broker = WsMessenger::start(&net, "http://broker");
    broker.set_fanout_workers(1);
    broker.set_fault_tolerance(Some(FaultTolerance {
        base_backoff_ms: 25,
        max_backoff_ms: 400,
        seed: 7,
        max_redeliveries: 4,
        ..FaultTolerance::default()
    }));

    // The objectives the run will be judged by. The windows span the
    // whole run so the verdicts weigh every terminal outcome, breaker-
    // paced dead-letter stragglers included.
    broker.set_slos(vec![
        SloSpec::p99("fanout_p99", 60, 3_600_000).with_budget(0.25),
        SloSpec::p99("fanout_p50", 30, 3_600_000)
            .with_quantile(0.5)
            .with_budget(0.25),
    ]);

    // Four healthy consumers and one black hole that drops every push.
    let wse = Subscriber::new(&net, WseVersion::Aug2004);
    for i in 0..4 {
        let sink = EventSink::start(&net, &format!("http://sink-{i}"), WseVersion::Aug2004);
        wse.subscribe(broker.uri(), SubscribeRequest::push(sink.epr()))
            .unwrap();
    }
    EventSink::start(&net, "http://blackhole", WseVersion::Aug2004);
    wse.subscribe(
        broker.uri(),
        SubscribeRequest::push(ws_messenger_suite::addressing::EndpointReference::new(
            "http://blackhole",
        )),
    )
    .unwrap();
    net.set_fault_plan(FaultPlan::seeded(7).with_endpoint(
        "http://blackhole",
        EndpointFaults::new().with_drop_rate(1.0),
    ));

    net.drain_trace();
    for i in 0..20 {
        broker.publish_on(
            "storms",
            &Element::local("reading").with_attr("n", i.to_string()),
        );
        net.clock().advance_ms(10);
    }
    // Let the redelivery queue run its backoffs to quiescence: every
    // (event, subscriber) pair reaches a terminal outcome.
    broker.drain_redeliveries(600_000);

    // 1. Per-stage latency: where a publication's time goes.
    let snap = broker.obs_snapshot();
    println!("pipeline stages over {} publications:", snap.published);
    println!(
        "  {:<12} {:>6} {:>10} {:>10}",
        "stage", "count", "p50 µs", "p99 µs"
    );
    for (name, stats) in &snap.stages {
        if stats.count == 0 {
            continue;
        }
        println!(
            "  {:<12} {:>6} {:>10.2} {:>10.2}",
            name,
            stats.count,
            stats.p50 / 1000.0,
            stats.p99 / 1000.0
        );
    }
    println!(
        "terminal outcomes: {} delivered, {} dead-lettered, {} expired",
        snap.outcome_delivered, snap.outcome_dead_lettered, snap.outcome_expired
    );
    println!(
        "end-to-end latency (publish → resolution): p50 {:.0}ms, p99 {:.0}ms, max {}ms\n",
        snap.e2e_latency_ms.p50, snap.e2e_latency_ms.p99, snap.e2e_latency_ms.max
    );

    // 2. One event's complete delivery story: the black hole's first
    // event retried with backoff until the redelivery budget ran out,
    // then moved to the dead-letter store.
    let stories = broker.delivery_stories();
    let doomed = stories
        .iter()
        .find(|s| s.outcome == Some(Outcome::DeadLettered))
        .expect("the black hole produced a dead letter");
    println!(
        "causal timeline of event #{} → {} (published t={}ms):",
        doomed.seq,
        doomed.subscriber,
        doomed.published_at_ms.unwrap()
    );
    for s in &doomed.spans {
        println!(
            "  t={:>5}ms {:<12} attempt {}{}",
            s.at_ms,
            s.stage.name(),
            s.attempt,
            s.outcome
                .map(|o| format!("  ⇒ {}", o.name()))
                .unwrap_or_default()
        );
    }
    println!(
        "  attempts {:?}, end-to-end {}ms (the retry chain, not the first send)\n",
        doomed.attempts(),
        doomed.e2e_ms().unwrap()
    );

    // 3. The verdicts: is the service meeting its objectives?
    println!("SLO verdicts:");
    for r in broker.slo_reports() {
        println!(
            "  {:<12} {}  p{:02.0} {:>6.1}ms vs {}ms target, bad {:.1}%, burn {:.2}x",
            r.name,
            if r.pass { "PASS" } else { "FAIL" },
            r.quantile * 100.0,
            r.measured_ms,
            r.target_ms,
            r.bad_fraction * 100.0,
            r.burn_rate
        );
    }

    // 4. Scraping: the same data over Prometheus text and SOAP.
    let metrics = broker.metrics_text();
    println!("\nselected Prometheus samples:");
    for line in metrics.lines().filter(|l| {
        l.starts_with("wsm_outcome_")
            || l.starts_with("wsm_spans_dropped")
            || l.starts_with("wsm_slo_pass")
    }) {
        println!("  {line}");
    }
    let resp = net
        .request(
            "http://broker",
            Envelope::new(SoapVersion::V11).with_body(Element::ns(
                ws_messenger_suite::messenger::render::WSM_NS,
                "GetTrace",
                "wsm",
            )),
        )
        .unwrap();
    println!(
        "\nGetTrace over SOAP returned {} spans",
        resp.body().unwrap().elements().count()
    );
}
