//! Grid job monitoring — the scenario the paper's introduction
//! motivates: "event notifications are disseminated for various
//! purposes in Grid computing applications, such as logging, monitoring
//! and auditing."
//!
//! A workflow engine publishes job-status events through WS-Messenger.
//! Three consumers watch them:
//!
//! * a *dashboard* (WS-Notification 1.3) subscribed to the whole
//!   `jobs` topic subtree,
//! * an *alerting service* (WS-Eventing) with an XPath content filter
//!   that only wants failures,
//! * a *laptop behind a firewall* that cannot accept inbound
//!   connections and therefore subscribes in pull mode — the exact
//!   scenario the paper gives for pull delivery.
//!
//! Run with `cargo run --example grid_monitoring`.

use ws_messenger_suite::eventing::{
    DeliveryMode, EventSink, Expires, Filter, SubscribeRequest, Subscriber, WseVersion,
};
use ws_messenger_suite::messenger::WsMessenger;
use ws_messenger_suite::notification::{
    NotificationConsumer, WsnClient, WsnFilter, WsnSubscribeRequest, WsnVersion,
};
use ws_messenger_suite::transport::Network;
use ws_messenger_suite::xml::Element;

fn job_event(job: &str, state: &str, sev: u32) -> Element {
    Element::local("jobStatus")
        .with_attr("job", job)
        .with_attr("sev", sev.to_string())
        .with_child(Element::local("state").with_text(state))
}

fn main() {
    let net = Network::new();
    let broker = WsMessenger::start(&net, "http://grid.example.org/messenger");

    // Dashboard: everything under jobs/.
    let dashboard = NotificationConsumer::start(&net, "http://portal/dashboard", WsnVersion::V1_3);
    let wsn = WsnClient::new(&net, WsnVersion::V1_3);
    wsn.subscribe(
        broker.uri(),
        &WsnSubscribeRequest::new(dashboard.epr()).with_filter(WsnFilter::topic("jobs")),
    )
    .unwrap();

    // Alerting: only failures, via an XPath content filter, with a
    // one-hour lease it must renew.
    let alerts = EventSink::start(&net, "http://ops/alerts", WseVersion::Aug2004);
    let wse = Subscriber::new(&net, WseVersion::Aug2004);
    let alert_handle = wse
        .subscribe(
            broker.uri(),
            SubscribeRequest::push(alerts.epr())
                .with_filter(Filter::xpath("/jobStatus[state = 'FAILED']"))
                .with_expires(Expires::Duration(3_600_000)),
        )
        .unwrap();

    // Firewalled laptop: pull mode.
    let laptop = EventSink::start_firewalled(&net, "http://laptop.home/sink", WseVersion::Aug2004);
    let laptop_handle = wse
        .subscribe(
            broker.uri(),
            SubscribeRequest::push(laptop.epr()).with_mode(DeliveryMode::Pull),
        )
        .unwrap();

    println!(
        "{} subscriptions registered at the broker",
        broker.subscription_count()
    );

    // The workflow engine runs a few jobs.
    broker.publish_on("jobs/status", &job_event("bwa-align-1", "RUNNING", 1));
    broker.publish_on("jobs/status", &job_event("bwa-align-1", "DONE", 1));
    broker.publish_on("jobs/errors", &job_event("varcall-2", "FAILED", 5));
    broker.publish_on("jobs/status", &job_event("varcall-2", "RETRYING", 3));

    // The dashboard saw everything under jobs/.
    println!(
        "dashboard received {} notifications:",
        dashboard.notifications().len()
    );
    for m in dashboard.notifications() {
        println!(
            "  [{}] job {} -> {}",
            m.topic.as_ref().map(|t| t.to_string()).unwrap_or_default(),
            m.message.attr("job").unwrap_or("?"),
            m.message
                .child("state")
                .map(|s| s.text())
                .unwrap_or_default()
        );
    }
    assert_eq!(dashboard.notifications().len(), 4);

    // Alerting only saw the failure.
    let alarm = alerts.received();
    println!(
        "alerting service received {} event(s): job {}",
        alarm.len(),
        alarm[0].attr("job").unwrap()
    );
    assert_eq!(alarm.len(), 1);
    assert_eq!(alarm[0].attr("job"), Some("varcall-2"));

    // The laptop polls from behind its firewall.
    let pulled = wse.pull(&laptop_handle, 10).unwrap();
    println!(
        "laptop pulled {} queued event(s) through the firewall",
        pulled.len()
    );
    assert_eq!(pulled.len(), 4);

    // Time passes; the alerting lease is renewed before it expires.
    net.clock().advance_ms(3_000_000);
    wse.renew(&alert_handle, Some(Expires::Duration(3_600_000)))
        .unwrap();
    net.clock().advance_ms(1_000_000); // past the original expiry
    broker.publish_on("jobs/errors", &job_event("bwa-align-9", "FAILED", 5));
    assert_eq!(alerts.received().len(), 2, "renewed lease still delivering");
    println!(
        "after renewal, alerting service has {} events",
        alerts.received().len()
    );

    // The ops team checks the last state of the errors topic on demand.
    let topic = ws_messenger_suite::topics::TopicExpression::concrete("jobs/errors").unwrap();
    let last = wsn
        .get_current_message(broker.uri(), &topic)
        .unwrap()
        .unwrap();
    println!(
        "GetCurrentMessage(jobs/errors) -> job {}",
        last.attr("job").unwrap()
    );
    assert_eq!(last.attr("job"), Some("bwa-align-9"));
    println!("ok");
}
