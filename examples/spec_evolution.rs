//! Reproduce the paper's evaluation artifacts in one run: Table 1,
//! Table 2, Table 3, Figures 1–2, and the §V.4 message-format diff.
//!
//! Run with `cargo run --example spec_evolution`.

use ws_messenger_suite::compare;

fn main() {
    println!("=== Table 1: spec-version evolution (derived from the implementations) ===\n");
    print!("{}", compare::render_table1());

    println!("\n=== Table 2: function comparison ===\n");
    print!("{}", compare::render_table2());

    println!("\n=== Table 3: six event-notification generations ===\n");
    print!("{}", compare::render_table3());

    println!("=== Figures 1 & 2 ===\n");
    println!(
        "{}",
        compare::render_architecture(&compare::wse_architecture())
    );
    println!(
        "{}",
        compare::render_architecture(&compare::wsbase_architecture())
    );

    println!("=== SSV.4: message-format differences, measured ===\n");
    let report = compare::run_msgdiff();
    print!("{}", report.render());
    for cat in compare::DiffCategory::ALL {
        assert!(report.total(cat) > 0, "category {cat:?} must be observed");
    }
    println!("\nall six difference categories observed, as the paper reports.");
}
