//! Quickstart: one mediation broker, two consumers speaking different
//! specifications, one publication reaching both.
//!
//! Run with `cargo run --example quickstart`.

use ws_messenger_suite::eventing::{EventSink, SubscribeRequest, Subscriber, WseVersion};
use ws_messenger_suite::messenger::WsMessenger;
use ws_messenger_suite::notification::{
    NotificationConsumer, WsnClient, WsnFilter, WsnSubscribeRequest, WsnVersion,
};
use ws_messenger_suite::transport::Network;
use ws_messenger_suite::xml::Element;

fn main() {
    // The simulated network and the WS-Messenger broker.
    let net = Network::new();
    let broker = WsMessenger::start(&net, "http://broker.example.org/events");
    println!(
        "broker up at {} (backend: {})",
        broker.uri(),
        broker.backend_name()
    );

    // Consumer 1 speaks WS-Eventing (August 2004).
    let wse_sink = EventSink::start(
        &net,
        "http://apps.example.org/wse-sink",
        WseVersion::Aug2004,
    );
    Subscriber::new(&net, WseVersion::Aug2004)
        .subscribe(broker.uri(), SubscribeRequest::push(wse_sink.epr()))
        .expect("WSE subscribe");
    println!("WS-Eventing consumer subscribed");

    // Consumer 2 speaks WS-Notification 1.3, with a topic filter.
    let wsn_consumer =
        NotificationConsumer::start(&net, "http://apps.example.org/wsn-sink", WsnVersion::V1_3);
    WsnClient::new(&net, WsnVersion::V1_3)
        .subscribe(
            broker.uri(),
            &WsnSubscribeRequest::new(wsn_consumer.epr()).with_filter(WsnFilter::topic("storms")),
        )
        .expect("WSN subscribe");
    println!("WS-Notification consumer subscribed (topic `storms`)");

    // One publication on the `storms` topic.
    let delivered = broker.publish_on("storms", &Element::local("alert").with_text("hail, severe"));
    println!("published 1 event; {delivered} deliveries");

    // Both consumers received it, each in their native dialect.
    println!(
        "WSE sink received {} raw notification(s): {:?}",
        wse_sink.received().len(),
        wse_sink
            .received()
            .iter()
            .map(|e| e.text())
            .collect::<Vec<_>>()
    );
    let wsn_msgs = wsn_consumer.notifications();
    println!(
        "WSN consumer received {} wrapped Notify message(s) on topic {:?}",
        wsn_msgs.len(),
        wsn_msgs[0].topic.as_ref().map(|t| t.to_string())
    );

    let stats = broker.stats();
    println!(
        "broker stats: published={} wse-deliveries={} wsn-deliveries={}",
        stats.published, stats.delivered_wse, stats.delivered_wsn
    );
    assert_eq!(wse_sink.received().len(), 1);
    assert_eq!(wsn_msgs.len(), 1);
    println!("ok");
}
