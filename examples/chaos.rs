//! Fault-tolerant delivery under a seeded chaos plan, end to end.
//!
//! A broker with the reliability layer switched on faces two badly
//! behaved consumers, and the walkthrough shows each mechanism doing
//! its job:
//!
//! 1. **Redelivery queue + backoff** — a flapping endpoint (dark 300ms
//!    of every virtual second) loses deliveries; instead of evicting
//!    the subscription, the broker parks the messages in a
//!    per-subscriber FIFO and retries on an exponential schedule with
//!    seeded jitter. Every message arrives, exactly once, in order.
//! 2. **Circuit breaker** — consecutive failures trip the breaker
//!    open, so the broker stops hammering a dead endpoint and probes
//!    it half-open on a doubling window instead.
//! 3. **Dead-letter store** — an endpoint that *answers* with SOAP
//!    faults is poison, not an outage; after a small strike budget the
//!    message moves to the dead-letter store, inspectable and
//!    redeliverable over SOAP (`GetDeadLetters` /
//!    `RedeliverDeadLetters` in the broker's extension namespace).
//! 4. **Observability** — breaker state, queue depth, dead letters and
//!    backoff delays all surface in the Prometheus exposition.
//!
//! Everything runs on the virtual clock with a seeded `FaultPlan`, so
//! the run is deterministic: same seed, same trace, same output. The
//! CI chaos job leans on exactly this property.
//!
//! Run with `cargo run --example chaos`.

use ws_messenger_suite::eventing::{EventSink, SubscribeRequest, Subscriber, WseVersion};
use ws_messenger_suite::messenger::{FaultTolerance, WsMessenger};
use ws_messenger_suite::transport::{EndpointFaults, FaultPlan, Network};
use ws_messenger_suite::xml::Element;

fn main() {
    let seed = 42;
    let net = Network::new();
    net.set_latency_ms(5);

    let broker = WsMessenger::start(&net, "http://broker");
    // One worker keeps the transport trace in deterministic order —
    // the same configuration the chaos test suite pins in CI.
    broker.set_fanout_workers(1);
    broker.set_fault_tolerance(Some(FaultTolerance {
        base_backoff_ms: 25,
        max_backoff_ms: 400,
        seed,
        ..FaultTolerance::default()
    }));

    // --- Act 1: a flapping consumer -------------------------------
    // Up 700ms, dark 300ms, every virtual second.
    let flappy = EventSink::start(&net, "http://flappy", WseVersion::Aug2004);
    let sub = Subscriber::new(&net, WseVersion::Aug2004);
    let handle = sub
        .subscribe(broker.uri(), SubscribeRequest::push(flappy.epr()))
        .expect("subscribe");
    net.set_fault_plan(FaultPlan::seeded(seed).with_endpoint(
        "http://flappy",
        EndpointFaults::new().with_flapping(1_000, 300),
    ));

    println!("== flapping consumer: 100 messages through 30% downtime ==");
    for seq in 0..100u32 {
        broker.publish_on(
            "storms",
            &Element::local("reading").with_attr("seq", seq.to_string()),
        );
        net.clock().advance_ms(13);
    }
    println!(
        "after the burst: {} queued for redelivery, breaker {:?}",
        broker.redelivery_depth(),
        broker.breaker_state(&handle.id),
    );

    // Walk the virtual clock forward until the queue drains; each step
    // jumps straight to the next due redelivery.
    let report = broker.drain_redeliveries(600_000);
    let seqs: Vec<u64> = flappy
        .received()
        .iter()
        .map(|e| e.attr("seq").unwrap().parse().unwrap())
        .collect();
    println!(
        "drained: {} redelivery attempts, {} delivered, {} requeues along the way",
        report.attempted, report.delivered, report.requeued
    );
    println!(
        "sink saw {} messages, in order: {}, duplicates: {}",
        seqs.len(),
        seqs.windows(2).all(|w| w[0] < w[1]),
        seqs.len() != 100,
    );
    // A drained channel with a re-closed breaker is retired entirely,
    // so the census reports live trouble only — `None` here means
    // "healthy, nothing tracked".
    println!(
        "subscription survived: {} active, breaker {:?}\n",
        broker.subscription_count(),
        broker.breaker_state(&handle.id),
    );

    // --- Act 2: a poison consumer ---------------------------------
    // This endpoint is alive but rejects the message with a SOAP fault
    // every time. That is not an outage to wait out — after
    // `poison_budget` strikes the message is dead-lettered and the
    // subscription (and queue) move on.
    let picky = EventSink::start(&net, "http://picky", WseVersion::Aug2004);
    sub.subscribe(broker.uri(), SubscribeRequest::push(picky.epr()))
        .expect("subscribe");
    net.fault_next("http://picky", 16);

    println!("== poison consumer: SOAP-faulting endpoint ==");
    broker.publish_on(
        "storms",
        &Element::local("reading").with_attr("seq", "poison-1"),
    );
    broker.drain_redeliveries(600_000);
    println!(
        "dead letters after strikes exhausted: {}",
        broker.dead_letter_count()
    );
    for dl in broker.dead_letters() {
        println!(
            "  to {} — {} (poison strikes {}, transient attempts {})",
            dl.address, dl.reason, dl.strikes, dl.attempts
        );
    }

    // Heal the endpoint and requeue the store — the same operation the
    // SOAP `RedeliverDeadLetters` extension performs.
    net.set_fault_plan(FaultPlan::seeded(seed));
    let requeued = broker.redeliver_dead_letters();
    broker.drain_redeliveries(600_000);
    println!(
        "healed and redelivered: {requeued} requeued, sink now holds {}, store holds {}\n",
        picky.received().len(),
        broker.dead_letter_count()
    );

    // --- Act 3: what the metrics saw ------------------------------
    println!("== reliability metrics in the exposition ==");
    for line in broker.metrics_text().lines() {
        if line.contains("wsm_dead_letters")
            || line.contains("wsm_redelivery_depth")
            || line.contains("wsm_breakers_open")
            || line.contains("wsm_backoff_delay_ms_count")
        {
            println!("  {line}");
        }
    }
}
