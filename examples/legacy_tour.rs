//! A tour of the pre-WS event-notification generations (the paper's
//! §VI): CORBA Event Service, CORBA Notification Service, JMS, and
//! OGSI notification — each driven through the substrate crates that
//! back Table 3.
//!
//! Run with `cargo run --example legacy_tour`.

use parking_lot::Mutex;
use std::sync::Arc;
use ws_messenger_suite::corba::{
    Any, EtclFilter, EventChannel, NotificationChannel, QosValue, StructuredEvent,
};
use ws_messenger_suite::jms::{JmsMessage, JmsProvider, Selector};
use ws_messenger_suite::ogsi;
use ws_messenger_suite::transport::Network;
use ws_messenger_suite::xml::Element;

fn corba_event_service() {
    println!("== CORBA Event Service (1995): untyped channels, no filtering ==");
    let channel = EventChannel::new();
    let seen: Arc<Mutex<Vec<String>>> = Arc::default();
    let proxy = channel.for_consumers().obtain_push_supplier();
    let s = Arc::clone(&seen);
    proxy.connect_push_consumer(move |e| s.lock().push(e.to_string()));
    let puller = channel.for_consumers().obtain_pull_supplier();

    let supplier = channel.for_suppliers().obtain_push_consumer();
    supplier.push(Any::from("disk full"));
    supplier.push(Any::Struct(vec![("load".into(), Any::from(0.93))]));
    println!("  push consumer saw everything: {:?}", seen.lock());
    println!(
        "  pull consumer drains: {:?} {:?}",
        puller.try_pull(),
        puller.try_pull()
    );
    // CDR framing, as the payloads would travel over IIOP.
    let bytes = ws_messenger_suite::corba::cdr::encode(&Any::from("disk full"));
    println!("  CDR encoding of the first event: {} bytes\n", bytes.len());
}

fn corba_notification_service() {
    println!("== CORBA Notification Service (1997): structured events + ETCL + QoS ==");
    let channel = NotificationChannel::new();
    channel
        .set_qos("OrderPolicy", QosValue::Name("PriorityOrder".into()))
        .unwrap();
    let (proxy, pull) = channel.connect_structured_pull_consumer();
    proxy.add_filter(EtclFilter::compile("$domain_name == 'Grid' and $severity >= 3").unwrap());
    for (name, sev, prio) in [("j1", 1, 0), ("j2", 5, 2), ("j3", 4, 9)] {
        let ev = StructuredEvent::new("Grid", "JobStatus", name)
            .with_field("severity", sev)
            .with_field("priority", prio);
        channel.push_structured_event(&ev);
    }
    let order: Vec<String> = std::iter::from_fn(|| pull.try_pull())
        .map(|e| e.event_name)
        .collect();
    println!("  ETCL filter `$severity >= 3` + PriorityOrder queue -> {order:?}");
    assert_eq!(order, vec!["j3", "j2"]);
    println!(
        "  13 standard QoS properties understood: {}\n",
        ws_messenger_suite::corba::STANDARD_QOS_PROPERTIES.len()
    );
}

fn jms() {
    println!("== JMS (1998): queues, topics, SQL92 selectors, durability ==");
    let provider = JmsProvider::new();
    // Point-to-point with a selector.
    provider.send("work", JmsMessage::text("low").with_property("sev", 1i64));
    provider.send(
        "work",
        JmsMessage::text("high")
            .with_property("sev", 5i64)
            .with_priority(9),
    );
    let sel = Selector::compile("sev BETWEEN 3 AND 9").unwrap();
    let got = provider.receive("work", Some(&sel)).unwrap();
    println!(
        "  queue receive with selector `sev BETWEEN 3 AND 9` -> priority {}",
        got.priority
    );

    // Durable pub/sub surviving a disconnect.
    let audit = provider.create_durable_subscriber("events", "audit", None);
    provider.publish("events", JmsMessage::text("e1"));
    audit.disconnect();
    provider.publish("events", JmsMessage::text("e2"));
    let audit2 = provider.create_durable_subscriber("events", "audit", None);
    println!(
        "  durable subscriber reconnects to {} buffered message(s)",
        audit2.pending()
    );
    assert_eq!(audit2.pending(), 2);

    // Transactions.
    let mut tx = provider.transacted_session();
    tx.publish("events", JmsMessage::text("uncommitted"));
    tx.rollback();
    tx.commit();
    println!(
        "  rolled-back publish never delivered (pending={})\n",
        audit2.pending()
    );
}

fn ogsi_notification() {
    println!("== OGSI notification (2003): service data elements over HTTP ==");
    let net = Network::new();
    let source = ogsi::NotificationSource::start(&net, "http://grid/job-service");
    let sink = ogsi::NotificationSink::start(&net, "http://grid/monitor");
    ogsi::subscribe(&net, source.uri(), "jobStatus", sink.uri(), None).unwrap();
    source.set_service_data("jobStatus", Element::local("status").with_text("ACTIVE"));
    source.set_service_data("cpuLoad", Element::local("load").with_text("0.7"));
    let got = sink.received();
    println!(
        "  sink notified of {} SDE change(s): {} = {}",
        got.len(),
        got[0].0,
        got[0].1.text()
    );
    assert_eq!(
        got.len(),
        1,
        "only the subscribed service data name notifies"
    );
    println!();
}

fn main() {
    corba_event_service();
    corba_notification_service();
    jms();
    ogsi_notification();
    println!("Each generation above is a column of Table 3 — regenerate it with:");
    println!("  cargo run -p wsm-bench --bin table3");
}
