//! Minimal in-tree substitute for the `rand` crate.
//!
//! A small splitmix64-based generator exposing the subset of the
//! `rand` API the workspace needs: `thread_rng()`, the [`Rng`] trait
//! with `gen_range`/`gen_bool`, and a seedable [`StdRng`].

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Trait for random-number generators.
pub trait Rng {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `[range.start, range.end)`. Panics on an
    /// empty range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[range.start, range.end)`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )+};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// A seedable splitmix64 generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Create a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Handle returned by [`thread_rng`].
pub type ThreadRng = StdRng;

static NEXT_SEED: AtomicU64 = AtomicU64::new(0x5eed_5eed_5eed_5eed);

/// A generator seeded differently on each call.
pub fn thread_rng() -> ThreadRng {
    StdRng::seed_from_u64(NEXT_SEED.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
