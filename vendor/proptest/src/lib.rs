//! Minimal in-tree substitute for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored
//! crate implements the subset of the proptest API the workspace's
//! property tests use: the [`proptest!`]/[`prop_oneof!`]/
//! [`prop_assert*`](prop_assert) macros, the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_filter`/`prop_recursive`/`boxed`,
//! tuple/range/`&str`-regex strategies, `any::<T>()`,
//! `collection::vec`, `option::of`, and `string::string_regex`.
//!
//! Differences from real proptest, by design:
//! - no shrinking — a failing case reports its generated inputs via
//!   the panic message (`Debug`) but is not minimized;
//! - deterministic generation — each `(test name, case index)` pair
//!   seeds a splitmix64 stream, so failures reproduce exactly;
//! - `.proptest-regressions` files are ignored.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror of the crate root, as re-exported by
/// `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::string;
}

/// Define property tests.
///
/// Accepts an optional `#![proptest_config(...)]` header followed by
/// any number of `fn name(arg in strategy, ...) { body }` items. Each
/// becomes a named function running `config.cases` deterministic
/// cases; bodies may use `prop_assert!`-family macros, which abort the
/// case with a descriptive failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let ($($arg,)+) =
                    $crate::strategy::Strategy::new_value(&strategies, &mut rng);
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {} of {} failed: {}\n  inputs: {}",
                        case,
                        stringify!($name),
                        err,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Choose uniformly between several strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n  {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                left
            )));
        }
    }};
}
