//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec`s whose length lies in `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.clone());
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let s = vec(0u8..10, 1..5);
        let mut rng = TestRng::for_case("collection::tests", 0);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
    }
}
