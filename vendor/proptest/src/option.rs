//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `None` about a quarter of the time and
/// `Some(inner)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn produces_both_variants() {
        let s = of(Just(1u8));
        let mut rng = TestRng::for_case("option::tests", 0);
        let vals: Vec<_> = (0..64).map(|_| s.new_value(&mut rng)).collect();
        assert!(vals.contains(&None) && vals.contains(&Some(1)));
    }
}
