//! String strategies from a regex subset.
//!
//! Supports the patterns the workspace's tests use: literal
//! characters, character classes with ranges and `&&[^...]`
//! subtraction (Java-style intersection syntax), escapes
//! (`\n`, `\t`, `\r`, `\\`, and escaped metacharacters), and the
//! quantifiers `{n}`, `{n,m}`, `?`, `*`, `+` (the unbounded ones are
//! capped at 8 repetitions).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt;

/// Error from [`string_regex`] on an unsupported or malformed pattern.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Strategy generating strings matching a regex subset.
#[derive(Debug, Clone)]
pub struct StringRegex {
    atoms: Vec<Atom>,
}

#[derive(Debug, Clone)]
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Compile `pattern` into a string strategy.
pub fn string_regex(pattern: &str) -> Result<StringRegex, Error> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => {
                let class = parse_class(&mut chars)?;
                if class.negated {
                    return Err(Error(format!(
                        "top-level negated classes are unsupported: {pattern}"
                    )));
                }
                class.chars
            }
            '\\' => vec![unescape(
                chars.next().ok_or_else(|| Error("trailing \\".into()))?,
            )],
            '.' | '(' | ')' | '|' | '^' | '$' => {
                return Err(Error(format!(
                    "unsupported regex construct {c:?} in {pattern}"
                )))
            }
            literal => vec![literal],
        };
        if set.is_empty() {
            return Err(Error(format!("empty character class in {pattern}")));
        }
        let (min, max) = parse_quantifier(&mut chars)?;
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    Ok(StringRegex { atoms })
}

struct Class {
    chars: Vec<char>,
    negated: bool,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Class, Error> {
    let negated = chars.peek() == Some(&'^') && {
        chars.next();
        true
    };
    let mut set: Vec<char> = Vec::new();
    loop {
        let c = chars
            .next()
            .ok_or_else(|| Error("unterminated character class".into()))?;
        match c {
            ']' => break,
            '&' if chars.peek() == Some(&'&') => {
                chars.next();
                if chars.next() != Some('[') {
                    return Err(Error("&& must be followed by a class".into()));
                }
                let other = parse_class(chars)?;
                if other.negated {
                    set.retain(|ch| !other.chars.contains(ch));
                } else {
                    set.retain(|ch| other.chars.contains(ch));
                }
            }
            _ => {
                let lo = if c == '\\' {
                    unescape(chars.next().ok_or_else(|| Error("trailing \\".into()))?)
                } else {
                    c
                };
                // A `-` that is not last in the class denotes a range.
                if chars.peek() == Some(&'-') {
                    let mut ahead = chars.clone();
                    ahead.next();
                    if ahead.peek().is_some_and(|&n| n != ']') {
                        chars.next();
                        let hc = chars.next().expect("peeked");
                        let hi = if hc == '\\' {
                            unescape(chars.next().ok_or_else(|| Error("trailing \\".into()))?)
                        } else {
                            hc
                        };
                        if (lo as u32) > (hi as u32) {
                            return Err(Error(format!("inverted range {lo}-{hi}")));
                        }
                        for cp in (lo as u32)..=(hi as u32) {
                            if let Some(ch) = char::from_u32(cp) {
                                set.push(ch);
                            }
                        }
                        continue;
                    }
                }
                set.push(lo);
            }
        }
    }
    set.dedup();
    Ok(Class {
        chars: set,
        negated,
    })
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<(usize, usize), Error> {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let (min, max) = match spec.split_once(',') {
                        None => {
                            let n = parse_count(&spec)?;
                            (n, n)
                        }
                        Some((lo, hi)) => (parse_count(lo)?, parse_count(hi)?),
                    };
                    if min > max {
                        return Err(Error(format!("inverted quantifier {{{spec}}}")));
                    }
                    return Ok((min, max));
                }
                spec.push(c);
            }
            Err(Error("unterminated quantifier".into()))
        }
        Some('?') => {
            chars.next();
            Ok((0, 1))
        }
        Some('*') => {
            chars.next();
            Ok((0, 8))
        }
        Some('+') => {
            chars.next();
            Ok((1, 8))
        }
        _ => Ok((1, 1)),
    }
}

fn parse_count(s: &str) -> Result<usize, Error> {
    s.trim()
        .parse()
        .map_err(|_| Error(format!("bad quantifier count {s:?}")))
}

impl Strategy for StringRegex {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let count = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_many(pattern: &str) -> Vec<String> {
        let strat = string_regex(pattern).unwrap();
        let mut rng = TestRng::for_case("string::tests", 1);
        (0..200).map(|_| strat.new_value(&mut rng)).collect()
    }

    #[test]
    fn simple_class_with_quantifier() {
        for s in gen_many("[a-z]{2,8}") {
            assert!((2..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn multi_atom_pattern() {
        for s in gen_many("[a-z]{1,8}:[A-Za-z]{1,16}") {
            let (l, r) = s.split_once(':').expect("colon literal");
            assert!(!l.is_empty() && !r.is_empty(), "{s:?}");
        }
    }

    #[test]
    fn class_subtraction() {
        for s in gen_many("[ -~&&[^<>&]]{1,40}") {
            assert!(!s.contains(['<', '>', '&']), "{s:?}");
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn escapes_and_multibyte() {
        let all: String = gen_many("[ -~é世\\n\\t]{0,24}").concat();
        assert!(all.chars().all(|c| (' '..='~').contains(&c)
            || c == 'é'
            || c == '世'
            || c == '\n'
            || c == '\t'));
    }

    #[test]
    fn trailing_dash_is_literal() {
        for s in gen_many("[a-f0-9-]{8,16}") {
            assert!(s
                .chars()
                .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase() || c == '-'));
        }
    }

    #[test]
    fn unsupported_patterns_error() {
        assert!(string_regex("a|b").is_err());
        assert!(string_regex("(ab)").is_err());
        assert!(string_regex("[^a]").is_err());
        assert!(string_regex("[a").is_err());
    }
}
