//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply produces a value from an RNG.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Discard generated values failing `pred`, retrying (bounded).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Build a recursive strategy: `recurse` receives the strategy for
    /// the previous depth level and returns the strategy for the next.
    ///
    /// `depth` bounds nesting; the `desired_size`/`expected_branch`
    /// hints of real proptest are accepted but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut levels = vec![leaf];
        for _ in 0..depth {
            let inner = levels.last().expect("at least the leaf level").clone();
            levels.push(recurse(inner).boxed());
        }
        // Mix all depth levels so shallow values still appear.
        Union::new(levels).boxed()
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let source = self;
        BoxedStrategy {
            gen: Rc::new(move |rng| source.new_value(rng)),
        }
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Combinator returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.new_value(rng))
    }
}

/// Combinator returned by [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.source.new_value(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.reason
        );
    }
}

/// Uniform choice between strategies of one value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of erased strategies.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].new_value(rng)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A);
impl_strategy_for_tuple!(A, B);
impl_strategy_for_tuple!(A, B, C);
impl_strategy_for_tuple!(A, B, C, D);
impl_strategy_for_tuple!(A, B, C, D, E);
impl_strategy_for_tuple!(A, B, C, D, E, F);

/// String literals are regex strategies, like in real proptest.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .new_value(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn map_filter_union() {
        let s = crate::prop_oneof![Just(1u32), Just(2u32)]
            .prop_map(|v| v * 10)
            .prop_filter("only 10", |v| *v == 10);
        let mut r = rng();
        for _ in 0..20 {
            assert_eq!(s.new_value(&mut r), 10);
        }
    }

    #[test]
    fn ranges_sample_within_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (-50i64..50).new_value(&mut r);
            assert!((-50..50).contains(&v));
        }
    }

    #[test]
    fn recursive_bounds_depth() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(0u8)
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut r = rng();
        for _ in 0..50 {
            assert!(depth(&s.new_value(&mut r)) <= 4);
        }
    }
}
