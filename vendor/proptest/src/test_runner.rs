//! Test configuration, RNG, and case-failure plumbing.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure of a single test case (`prop_assert!` family).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64 stream, seeded per `(test, case)`.
///
/// Determinism is a feature: a failing case fails identically on
/// every run and machine, substituting for proptest's
/// regression-seed files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: hash ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Modulo bias is acceptable for test generation purposes.
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
