//! `any::<T>()` strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: PhantomData,
        }
    }
}

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly well-scaled finite values, occasionally raw bit soup
        // (which may produce infinities and NaN, as real proptest can).
        if rng.below(8) == 0 {
            f64::from_bits(rng.next_u64())
        } else {
            let magnitude = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let scaled = magnitude * 1e6 - 5e5;
            if rng.below(2) == 0 {
                scaled
            } else {
                scaled / 1e3
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        loop {
            if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                return c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_takes_both_values() {
        let mut rng = TestRng::for_case("arbitrary::tests", 0);
        let vals: Vec<bool> = (0..64).map(|_| bool::arbitrary(&mut rng)).collect();
        assert!(vals.contains(&true) && vals.contains(&false));
    }

    #[test]
    fn f64_produces_finite_values() {
        let mut rng = TestRng::for_case("arbitrary::tests", 1);
        assert!((0..64).any(|_| f64::arbitrary(&mut rng).is_finite()));
    }
}
