//! Minimal in-tree substitute for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of the `parking_lot` API the workspace
//! uses — `Mutex` and `RwLock` with non-poisoning guards — implemented
//! on top of `std::sync`. Poisoning is deliberately swallowed: like
//! real parking_lot, a panic while holding a guard does not poison the
//! lock for subsequent users.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot` semantics (no poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

/// A reader-writer lock with `parking_lot` semantics (no poisoning).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_is_not_poisoned_by_panics() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
