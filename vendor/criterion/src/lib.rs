//! Minimal in-tree substitute for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace's benches
//! use: `criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group` with `sample_size`/`bench_function`/
//! `bench_with_input`/`finish`, `BenchmarkId`, and `Bencher::iter`.
//! Timing is a straightforward warmup + fixed-sample measurement with
//! a median-of-samples report; there is no statistical analysis, HTML
//! report, or CLI filtering.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark, split across samples.
const TARGET_MEASURE: Duration = Duration::from_millis(300);
const WARMUP: Duration = Duration::from_millis(60);

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&id.into().label, 10, f);
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
    }

    /// Run a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
    }

    /// Finish the group (report separator).
    pub fn finish(self) {
        println!();
    }
}

/// A benchmark identifier (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier for `name` at `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier distinguished only by `parameter`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f`, called `self.iters` times.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Warmup: discover a per-iteration cost and let caches settle.
    let mut iters: u64 = 1;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= WARMUP || iters >= 1 << 20 {
            break b.elapsed / u32::try_from(iters).unwrap_or(u32::MAX).max(1);
        }
        iters = iters.saturating_mul(4);
    };

    // Measurement: fixed samples sized so the whole run hits the target.
    let budget = TARGET_MEASURE / u32::try_from(sample_size).unwrap_or(1).max(1);
    let iters_per_sample = if per_iter.is_zero() {
        1 << 16
    } else {
        (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
    };
    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters_per_sample as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{label:<48} time: [{} {} {}]",
        format_ns(lo),
        format_ns(median),
        format_ns(hi)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Group benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("incr", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(count > 0);
    }
}
