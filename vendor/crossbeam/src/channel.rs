//! Multi-producer multi-consumer channels.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Create an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Create a bounded MPMC channel; sends block while `cap` items are queued.
///
/// A capacity of zero is treated as a capacity of one (the vendored
/// implementation has no rendezvous mode).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

struct State<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Error returned by [`Sender::send`] when every receiver is gone.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Send `value`, blocking while a bounded channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match state.cap {
                Some(cap) if state.queue.len() >= cap => {
                    state = self.shared.not_full.wait(state).unwrap();
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

/// The receiving half of a channel. Cloneable.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Receive the next value, blocking until one is available.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap();
        if let Some(value) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(value);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking iterator over received values; ends when the channel
    /// is empty and all senders are gone.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.shared.not_full.notify_all();
        }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn disconnected_send_fails() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn mpmc_fan_in_fan_out() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100u32 {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || {
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }
}
