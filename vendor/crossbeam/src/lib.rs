//! Minimal in-tree substitute for the `crossbeam` crate.
//!
//! Provides the `crossbeam::channel` MPMC channel subset the delivery
//! engine uses (`bounded`/`unbounded`, cloneable `Sender`/`Receiver`),
//! implemented with a `Mutex<VecDeque>` plus two condvars. Semantics
//! match crossbeam-channel where exercised: sends to a channel with no
//! receivers fail, receives on an empty channel with no senders fail,
//! and a bounded sender blocks while the queue is full.

#![warn(missing_docs)]

pub mod channel;
